"""Tests for the system-level advising sweeps."""

from __future__ import annotations

import pytest

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partition import Partition
from repro.dfg.builders import GraphBuilder
from repro.errors import PartitioningError
from repro.experiments import experiment1_session
from repro.library.presets import extended_library
from repro.memory.module import MemoryModule
from repro.search.advisor import (
    advise_memory_assignment,
    advise_partition_count,
)


class TestPartitionCountAdvice:
    @pytest.fixture(scope="class")
    def advice(self):
        return advise_partition_count(
            lambda count: experiment1_session(2, count),
            max_partitions=3,
        )

    def test_all_counts_ranked(self, advice):
        assert len(advice) == 3
        labels = {a.label for a in advice}
        assert labels == {"1 partition", "2 partitions", "3 partitions"}

    def test_sorted_feasible_first_then_ii(self, advice):
        keys = [a.sort_key() for a in advice]
        assert keys == sorted(keys)

    def test_best_is_three_partitions(self, advice):
        # Experiment 1: more chips -> faster feasible designs.
        assert advice[0].label == "3 partitions"
        assert advice[0].feasible

    def test_infeasible_counts_rank_last(self):
        def factory(count):
            session = experiment1_session(2, count)
            if count == 2:
                # Sabotage: impossible constraints for this count.
                session.criteria = FeasibilityCriteria(
                    performance_ns=1.0, delay_ns=1.0
                )
            return session

        advice = advise_partition_count(factory, max_partitions=2)
        assert advice[-1].label == "2 partitions"
        assert not advice[-1].feasible

    def test_rejects_bad_max(self):
        with pytest.raises(PartitioningError):
            advise_partition_count(lambda c: None, max_partitions=0)


class TestMemoryAssignmentAdvice:
    @pytest.fixture
    def memory_session(self):
        b = GraphBuilder("mem-advice", default_width=16)
        addr = b.input("addr")
        w = b.input("w")
        r1 = b.mem_read(addr, "M")
        r2 = b.mem_read(addr, "M")
        p1 = b.mul(r1, w)
        p2 = b.mul(r2, w)
        total = b.add(p1, p2, name="total")
        b.output(total)
        graph = b.build()

        session = ChopSession(
            graph=graph,
            library=extended_library(),
            clocks=ClockScheme(300.0),
            style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=60_000.0, delay_ns=90_000.0
            ),
            memories=[MemoryModule("M", 64, 16, access_time_ns=250.0)],
        )
        session.add_chip("chip1", mosis_package(2))
        session.add_chip("chip2", mosis_package(2))
        session.assign_memory("M", "chip1")
        front = [op.id for op in graph
                 if op.op_type.value in ("mem_read", "mul")]
        back = [op.id for op in graph if op.id not in set(front)]
        session.set_partitions(
            [Partition.of("P1", front), Partition.of("P2", back)],
            {"P1": "chip1", "P2": "chip2"},
        )
        return session

    def test_all_assignments_tried(self, memory_session):
        advice = advise_memory_assignment(memory_session)
        assert len(advice) == 2  # one block, two chips
        labels = {a.label for a in advice}
        assert labels == {"M->chip1", "M->chip2"}

    def test_best_assignment_local_to_reader(self, memory_session):
        advice = advise_memory_assignment(memory_session)
        best = advice[0]
        assert best.feasible
        assert best.label == "M->chip1"

    def test_original_assignment_restored(self, memory_session):
        original = dict(memory_session.memory_chip)
        advise_memory_assignment(memory_session)
        assert memory_session.memory_chip == original

    def test_no_blocks_rejected(self):
        session = experiment1_session(2, 1)
        with pytest.raises(PartitioningError, match="no assignable"):
            advise_memory_assignment(session)
