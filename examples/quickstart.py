"""Quickstart: partition the AR lattice filter onto two chips.

Replays the paper's experiment-1 protocol on its Figure 6 benchmark: a
two-partition horizontal cut, one MOSIS 84-pin chip per partition, hard
constraints of 30 us on performance and system delay, and the iterative
(Figure 5) search heuristic.  Prints the feasible designs and the
section-3.1-style synthesis guidelines for the best one.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ArchitectureStyle,
    ChopSession,
    ClockScheme,
    FeasibilityCriteria,
    OperationTiming,
    ar_lattice_filter,
    horizontal_cut,
    mosis_package,
    table1_library,
)
from repro.reporting import design_guidelines, results_table


def main() -> None:
    session = ChopSession(
        graph=ar_lattice_filter(),
        library=table1_library(),
        # Main clock 300 ns; datapath clock 10x slower; transfer clock
        # at main speed (the paper's experiment-1 clocking).
        clocks=ClockScheme(300.0, dp_multiplier=10, transfer_multiplier=1),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=30_000.0, delay_ns=30_000.0
        ),
    )
    session.add_chip("chip1", mosis_package(2))
    session.add_chip("chip2", mosis_package(2))

    partitions = horizontal_cut(session.graph, 2)
    session.set_partitions(
        partitions, {"P1": "chip1", "P2": "chip2"}
    )

    print("Tentative partitioning:")
    for partition in partitions:
        print(f"  {partition.name}: {len(partition)} operations")
    print()

    result = session.check(heuristic="iterative")
    print(
        f"Searched {result.trials} partitioning implementation trials "
        f"in {result.cpu_seconds:.2f} s; "
        f"{result.feasible_trials} feasible."
    )
    print()
    print("Feasible, non-inferior designs:")
    print(results_table([(2, 2, "I", result)]))
    print()

    best = result.best()
    if best is None:
        print("No feasible implementation; relax the constraints.")
        return
    print(design_guidelines(best))


if __name__ == "__main__":
    main()
