"""Terminal rendering of traces: the ``repro trace show`` span tree.

Reconstructs the span forest from parent ids (spans with unresolved
parents — e.g. a truncated file — surface as extra roots rather than
vanishing), sorts siblings by start time, and prints one line per span
with its wall time, status and counters.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Sequence


def _format_counters(counters: Mapping[str, Any]) -> str:
    if not counters:
        return ""
    return "  " + " ".join(
        f"{key}={value}" for key, value in sorted(counters.items())
    )


def _label(record: Mapping[str, Any]) -> str:
    name = record.get("name", "?")
    attrs = record.get("attrs", {})
    if name == "engine.shard" and "shard" in attrs:
        return f"{name}[{attrs['shard']}]"
    return str(name)


def _span_line(record: Mapping[str, Any], width: int) -> str:
    status = record.get("status", "?")
    marker = {"ok": " ", "error": "!", "cancelled": "x"}.get(status, "?")
    label = _label(record)
    elapsed = record.get("elapsed_s", 0.0)
    line = f"{label:<{width}} {elapsed * 1000:>10.2f} ms {marker}"
    line += _format_counters(record.get("counters", {}))
    if status == "error" and record.get("attrs", {}).get("error"):
        line += f"  [{record['attrs']['error']}]"
    return line


def render_trace(records: Sequence[Mapping[str, Any]]) -> str:
    """Render span records (one or more traces) as indented trees."""
    if not records:
        return "(empty trace)"
    by_trace: Dict[str, List[Mapping[str, Any]]] = {}
    for record in records:
        by_trace.setdefault(str(record.get("trace_id")), []).append(record)

    blocks: List[str] = []
    for trace_id, spans in sorted(by_trace.items()):
        blocks.append(_render_one(trace_id, spans))
    return "\n\n".join(blocks)


def _render_one(
    trace_id: str, spans: List[Mapping[str, Any]]
) -> str:
    ids = {str(record.get("span_id")) for record in spans}
    children: Dict[str, List[Mapping[str, Any]]] = {}
    roots: List[Mapping[str, Any]] = []
    for record in spans:
        parent = record.get("parent_id")
        if parent is not None and str(parent) in ids:
            children.setdefault(str(parent), []).append(record)
        else:
            roots.append(record)

    def start_key(record: Mapping[str, Any]) -> Any:
        return (record.get("start_s", 0.0), str(record.get("span_id")))

    roots.sort(key=start_key)
    for sibling_list in children.values():
        sibling_list.sort(key=start_key)

    # Longest label + indentation decides the timing column.
    width = 20

    def measure(record: Mapping[str, Any], depth: int) -> None:
        nonlocal width
        width = max(width, len(_label(record)) + 3 * depth)
        for child in children.get(str(record.get("span_id")), []):
            measure(child, depth + 1)

    for root in roots:
        measure(root, 0)

    total_ms = sum(r.get("elapsed_s", 0.0) for r in roots) * 1000
    lines = [
        f"trace {trace_id}  ({len(spans)} spans, "
        f"{total_ms:.2f} ms at root)"
    ]

    def walk(record: Mapping[str, Any], prefix: str, last: bool) -> None:
        connector = "└─ " if last else "├─ "
        body = _span_line(record, max(1, width - len(prefix) - 3))
        lines.append(f"{prefix}{connector}{body}")
        child_prefix = prefix + ("   " if last else "│  ")
        kids = children.get(str(record.get("span_id")), [])
        for index, child in enumerate(kids):
            walk(child, child_prefix, index == len(kids) - 1)

    for index, root in enumerate(roots):
        walk(root, "", index == len(roots) - 1)
    return "\n".join(lines)
