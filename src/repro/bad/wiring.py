"""Standard-cell wiring area and delay model.

BAD predicts "standard cell routing area" and the wiring contribution to
the clock cycle (section 2.4).  Routing area in a standard-cell design is
an overhead fraction of the active cell area that grows with the number
of interconnected cells (channel count grows with rows, net length with
row width); the classic fit is logarithmic in cell count.  Wiring delay is
driven by the longest on-chip nets and scales with the die's linear
dimension, i.e. the square root of the occupied area.

Routing estimates are the least certain part of any pre-layout predictor,
so their triplet bounds are the widest in the library.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PredictionError
from repro.stats import Triplet


@dataclass(frozen=True, slots=True)
class WiringParameters:
    """Fit constants for the routing model (3-micron standard cell)."""

    #: Base routing fraction for a trivial design.
    base_fraction: float = 0.11
    #: Additional fraction per natural-log of the cell count.
    fraction_per_log_cell: float = 0.033
    #: Cap: routing never exceeds this fraction of active area.
    max_fraction: float = 0.85
    #: Wiring delay per mil of estimated die side, in ns.
    delay_per_mil_ns: float = 0.012
    #: Relative uncertainty bounds (routing is the widest prediction).
    area_rel_lb: float = 0.76
    area_rel_ub: float = 1.26


@dataclass(frozen=True, slots=True)
class WiringEstimate:
    """Routing area and the wiring delay added to the clock cycle."""

    area_mil2: Triplet
    delay_ns: float
    fraction: float


def wiring_estimate(
    active_area_mil2: float,
    cell_count: int,
    params: WiringParameters = WiringParameters(),
) -> WiringEstimate:
    """Routing overhead over ``active_area_mil2`` of placed cells.

    ``cell_count`` is the number of placed instances (operators, register
    words, word-wide mux groups, the controller): more instances mean more
    nets and a higher routing fraction.
    """
    if active_area_mil2 < 0:
        raise PredictionError(
            f"active area must be non-negative, got {active_area_mil2}"
        )
    if cell_count < 0:
        raise PredictionError(
            f"cell count must be non-negative, got {cell_count}"
        )
    fraction = min(
        params.max_fraction,
        params.base_fraction
        + params.fraction_per_log_cell * math.log1p(cell_count),
    )
    most_likely = active_area_mil2 * fraction
    area = Triplet.spread(most_likely, params.area_rel_lb, params.area_rel_ub)
    total_area = active_area_mil2 + most_likely
    delay = params.delay_per_mil_ns * math.sqrt(max(total_area, 0.0))
    return WiringEstimate(area_mil2=area, delay_ns=delay, fraction=fraction)
