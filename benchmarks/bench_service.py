"""Serving-layer throughput: cold/warm cache checks/sec + an RPS soak.

Not a paper table — this measures the subsystem the paper's
interactivity claim (sections 1 and 6) grows into: a designer session
re-checks near-identical partitionings, so the server memoizes verdicts
on the project fingerprint.  Two benches:

* cold vs warm check throughput (in-process dispatch, artifact
  ``service_throughput.txt``);
* a sustained-RPS soak over a real socket: concurrent clients hammer
  ``/healthz`` and warm ``/check`` for a fixed request budget, then the
  bench asserts the Prometheus exposition carries sane p95-latency and
  error-rate gauges and writes ``BENCH_service.json`` — the baseline
  ``benchmarks/check_bench_trajectory.py`` compares against in CI.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.request

from repro.experiments import experiment1_session
from repro.io.project import session_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.service import ChopService, make_server

WARM_REQUESTS = 200

SOAK_CLIENTS = 4
SOAK_REQUESTS_PER_CLIENT = 75


def _cold_check_seconds(doc) -> float:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    started = time.perf_counter()
    service._check(entry, {"heuristic": "iterative"})
    elapsed = time.perf_counter() - started
    service.close()
    return elapsed


def _warm_checks_per_second(doc) -> tuple:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    first = service._check(entry, {"heuristic": "iterative"})
    assert first["cache_hit"] is False
    started = time.perf_counter()
    for _ in range(WARM_REQUESTS):
        response = service._check(entry, {"heuristic": "iterative"})
        assert response["cache_hit"] is True
    elapsed = time.perf_counter() - started
    stats = service.cache.stats()
    service.close()
    return WARM_REQUESTS / elapsed, stats


def test_service_cold_vs_warm_throughput(benchmark, save_artifact):
    doc = session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )
    measurements = {}

    def run():
        cold_s = _cold_check_seconds(doc)
        warm_rate, stats = _warm_checks_per_second(doc)
        measurements.update(
            cold_s=cold_s, warm_rate=warm_rate, stats=stats
        )
        return measurements

    benchmark.pedantic(run, rounds=1, iterations=1)

    cold_rate = 1.0 / measurements["cold_s"]
    warm_rate = measurements["warm_rate"]
    stats = measurements["stats"]
    lines = [
        "Serving-layer check throughput (experiment 1, 2 partitions,",
        "iterative heuristic, one process, in-process dispatch):",
        "",
        f"  cold cache : {cold_rate:10.1f} checks/sec "
        f"({measurements['cold_s'] * 1000:.1f} ms/check)",
        f"  warm cache : {warm_rate:10.1f} checks/sec "
        f"(over {WARM_REQUESTS} requests)",
        f"  speedup    : {warm_rate / cold_rate:10.1f}x",
        "",
        f"  cache hits {stats['hits']}, misses {stats['misses']}, "
        f"hit rate {stats['hit_rate']:.3f}",
    ]
    save_artifact("service_throughput.txt", "\n".join(lines))

    # The whole point of the cache: warm must beat cold clearly.
    assert warm_rate > cold_rate * 2
    assert stats["misses"] == 1
    assert stats["hits"] == WARM_REQUESTS


def _get(port: int, path: str) -> tuple:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as resp:
        return resp.status, resp.read().decode()


def test_service_soak_rps_and_slo_gauges(benchmark, save_artifact):
    """Sustained-RPS soak smoke over a real socket.

    Asserts the scrape-side contract the dashboards depend on: after
    load, the Prometheus exposition carries the request-latency
    histogram with a finite bucket-derived p95 and the SLO burn gauges,
    and the error-rate objective reads zero for an all-2xx soak.
    """
    doc = session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )
    registry = MetricsRegistry()  # isolated from other benches
    service = ChopService(workers=1, registry=registry)
    httpd = make_server(service, "127.0.0.1", 0)
    port = httpd.server_address[1]
    serving = threading.Thread(target=httpd.serve_forever, daemon=True)
    serving.start()
    measurements = {}
    try:
        body = json.dumps(doc).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            pid = json.loads(resp.read())["project_id"]
        # Warm the check cache so the soak measures serving overhead,
        # not BAD prediction.
        check = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects/{pid}/check",
            data=b"{}",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(check, timeout=120) as resp:
            resp.read()

        errors = []

        def client(index: int) -> None:
            try:
                for i in range(SOAK_REQUESTS_PER_CLIENT):
                    if i % 3 == 0:
                        with urllib.request.urlopen(
                            urllib.request.Request(
                                f"http://127.0.0.1:{port}/projects/"
                                f"{pid}/check",
                                data=b"{}",
                                method="POST",
                            ),
                            timeout=60,
                        ) as resp:
                            resp.read()
                    else:
                        _get(port, "/healthz")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def soak():
            started = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(SOAK_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            measurements["wall_s"] = time.perf_counter() - started
            return measurements

        benchmark.pedantic(soak, rounds=1, iterations=1)
        assert not errors

        total = SOAK_CLIENTS * SOAK_REQUESTS_PER_CLIENT
        rps = total / measurements["wall_s"]
        histogram = service.metrics.latency_histogram
        p50 = histogram.quantile(0.5)
        p95 = histogram.quantile(0.95)
        slo = service.slo.evaluate()
        error_doc = next(
            o
            for o in slo["objectives"]
            if o["kind"] == "error_rate"
        )

        status, text = _get(port, "/metrics?format=prometheus")
        assert status == 200
        # The gauges dashboards alert on must be present and sane.
        assert "# TYPE chop_request_latency_seconds histogram" in text
        assert 'chop_slo_burn_ratio{slo="latency_p95"}' in text
        assert 'chop_slo_ok{slo="error_rate"} 1' in text
        assert p95 is not None and 0 < p95 < 60
        assert p50 is not None and p50 <= p95
        assert error_doc["measured_ratio"] in (None, 0.0)

        payload = {
            "bench": "service_soak",
            "clients": SOAK_CLIENTS,
            "requests": total,
            "rps": round(rps, 1),
            "p50_ms": round(p50 * 1000, 3),
            "p95_ms": round(p95 * 1000, 3),
            "error_rate": error_doc["measured_ratio"] or 0.0,
            "slo_ok": bool(slo["ok"]),
            "gates_ok": True,
        }
        save_artifact(
            "BENCH_service.json", json.dumps(payload, indent=2)
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
        serving.join(5)
