"""Graceful-drain tests: readiness, shutdown semantics, SIGTERM.

The drain lifecycle (docs/resilience.md): admissions stop immediately
(``/readyz`` flips to 503, new ``POST`` s are refused), running jobs get
up to the drain timeout to finish, stragglers are cancelled
cooperatively, and every job a client might poll reaches a terminal
state — nobody waits forever on a job the executor silently dropped.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.errors import DrainingError
from repro.experiments import experiment1_session
from repro.io.project import session_to_dict
from repro.service import ChopService
from repro.service.jobs import CANCELLED, DONE, JobQueue


@pytest.fixture(scope="module")
def project_doc():
    return session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )


def handle(service, method, path, payload=None):
    body = None if payload is None else json.dumps(payload).encode()
    return service.handle(method, path, body)


class _Gate:
    def __init__(self):
        self.release = threading.Event()
        self.running = threading.Event()

    def job(self, should_stop):
        self.running.set()
        self.release.wait(timeout=30)
        return "done"

    def cooperative_job(self, should_stop):
        self.running.set()
        while not should_stop():
            time.sleep(0.01)
        return "stopped"


# ----------------------------------------------------------------------
# the shutdown bugfix: queued jobs must reach a terminal state
# ----------------------------------------------------------------------
class TestShutdownMarksQueuedJobs:
    def test_queued_jobs_are_cancelled_not_orphaned(self):
        gate = _Gate()
        queue = JobQueue(workers=1)
        queue.submit(gate.job)
        gate.running.wait(timeout=10)
        queued = [queue.submit(gate.job) for _ in range(3)]
        gate.release.set()
        queue.shutdown()
        # Before the fix, cancel_futures=True dropped the queued
        # futures without ever running _run, so these jobs stayed
        # "queued" forever and a polling client would never return.
        for job in queued:
            final = queue.wait(job.id, timeout=5)
            assert final.state == CANCELLED
            assert final.finished_at is not None
            assert "shut down" in (final.error or "")

    def test_shutdown_closes_admissions(self):
        queue = JobQueue(workers=1)
        queue.shutdown()
        with pytest.raises(DrainingError):
            queue.submit(lambda should_stop: None)


# ----------------------------------------------------------------------
# drain semantics
# ----------------------------------------------------------------------
class TestDrain:
    def test_drain_waits_for_running_jobs(self):
        gate = _Gate()
        queue = JobQueue(workers=1)
        job = queue.submit(gate.job)
        gate.running.wait(timeout=10)

        def release_soon():
            time.sleep(0.1)
            gate.release.set()

        threading.Thread(target=release_soon, daemon=True).start()
        outcome = queue.drain(timeout_s=10.0)
        assert outcome["drained"] is True
        assert outcome["forced"] == 0
        assert queue.get(job.id).state == DONE

    def test_drain_timeout_cancels_cooperatively(self):
        gate = _Gate()
        queue = JobQueue(workers=1)
        job = queue.submit(gate.cooperative_job)
        gate.running.wait(timeout=10)
        outcome = queue.drain(timeout_s=0.05, grace_s=5.0)
        # The job ignored the deadline but honoured its cancel hook.
        assert outcome["drained"] is False
        assert outcome["forced"] == 1
        final = queue.get(job.id)
        assert final.state in (DONE, CANCELLED)

    def test_drained_queue_refuses_submissions(self):
        queue = JobQueue(workers=1)
        queue.drain(timeout_s=0.1)
        with pytest.raises(DrainingError):
            queue.submit(lambda should_stop: None)


# ----------------------------------------------------------------------
# service-level readiness and drain
# ----------------------------------------------------------------------
class TestReadiness:
    def test_healthz_vs_readyz_semantics(self, project_doc):
        service = ChopService(workers=1)
        try:
            # Healthy: both answer 200.
            status, payload, _r, _h = handle(service, "GET", "/healthz")
            assert status == 200 and payload["status"] == "ok"
            status, payload, _r, _h = handle(service, "GET", "/readyz")
            assert status == 200 and payload["status"] == "ready"

            service.drain(timeout_s=0.1)
            # Draining: liveness still 200 (don't kill the process,
            # it's finishing work), readiness 503 (route traffic away).
            status, _payload, _r, _h = handle(service, "GET", "/healthz")
            assert status == 200
            status, payload, _r, _h = handle(service, "GET", "/readyz")
            assert status == 503
            assert payload["status"] == "draining"
        finally:
            service.close()

    def test_draining_service_refuses_new_work_with_retry_after(
        self, project_doc
    ):
        service = ChopService(workers=1, drain_timeout_s=7.0)
        try:
            status, payload, _r, _h = handle(
                service, "POST", "/projects", project_doc
            )
            pid = payload["project_id"]
            service.drain(timeout_s=0.1)
            for path in (
                "/projects",
                f"/projects/{pid}/check",
                f"/projects/{pid}/enumerate",
            ):
                status, payload, _route, headers = handle(
                    service, "POST", path, {}
                )
                assert status == 503, path
                assert payload["type"] == "draining"
                assert headers["Retry-After"] == "7"
            # Reads and job routes stay available during the drain.
            status, _payload, _r, _h = handle(
                service, "GET", f"/projects/{pid}"
            )
            assert status == 200
            status, _payload, _r, _h = handle(
                service, "POST", "/jobs/job-999/cancel"
            )
            assert status == 404  # routed, not refused
        finally:
            service.close()

    def test_drain_completes_inflight_job(self, project_doc):
        service = ChopService(workers=1, job_timeout_s=60.0)
        gate = _Gate()
        try:
            job = service.jobs.submit(gate.job)
            gate.running.wait(timeout=10)
            threading.Timer(0.1, gate.release.set).start()
            outcome = service.drain(timeout_s=10.0)
            assert outcome["drained"] is True
            assert service.jobs.get(job.id).state == DONE
        finally:
            gate.release.set()
            service.close()


# ----------------------------------------------------------------------
# SIGTERM end to end
# ----------------------------------------------------------------------
class TestSigterm:
    @pytest.mark.skipif(
        not hasattr(signal, "SIGTERM") or os.name == "nt",
        reason="POSIX signal delivery required",
    )
    def test_sigterm_drains_and_exits_cleanly(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = "src"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli", "serve",
                "--port", "0", "--workers", "1",
                "--drain-timeout", "5",
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
            cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        )
        try:
            banner = proc.stdout.readline()
            assert "serving on http://" in banner
            port = int(
                banner.split("http://127.0.0.1:")[1].split(" ")[0].strip()
            )

            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}/readyz", timeout=10
            ) as resp:
                assert resp.status == 200

            proc.send_signal(signal.SIGTERM)

            # During the drain window the server still answers; /readyz
            # flips to 503 (or the socket is already closed if the empty
            # drain finished between the signal and our probe).
            try:
                urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/readyz", timeout=5
                )
            except urllib.error.HTTPError as exc:
                assert exc.code == 503
            except (urllib.error.URLError, ConnectionError, OSError):
                pass

            output, _ = proc.communicate(timeout=30)
            assert proc.returncode == 0
            assert "draining" in output
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate(timeout=10)
