"""Triplet (lower-bound, most-likely, upper-bound) prediction values.

Every quantity BAD and CHOP predict — areas, delays, bandwidths — is a
:class:`Triplet`.  Arithmetic combines bounds conservatively: lower bounds
add with lower bounds, upper with upper.  This matches the paper's use of a
statistical environment where predictions are triplets and feasibility is
judged probabilistically (section 2.6).

Triplets are immutable; operations return new instances.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Union

Number = Union[int, float]


@dataclass(frozen=True, slots=True)
class Triplet:
    """An uncertain quantity with lower-bound, most-likely and upper-bound.

    Invariant: ``lb <= ml <= ub``.  Exact quantities are triplets with all
    three fields equal (see :meth:`exact`).
    """

    lb: float
    ml: float
    ub: float

    def __post_init__(self) -> None:
        if math.isnan(self.lb) or math.isnan(self.ml) or math.isnan(self.ub):
            raise ValueError("triplet fields must not be NaN")
        if not (self.lb <= self.ml <= self.ub):
            raise ValueError(
                f"triplet ordering violated: lb={self.lb} ml={self.ml} ub={self.ub}"
            )

    # ------------------------------------------------------------------
    # constructors
    # ------------------------------------------------------------------
    @staticmethod
    def exact(value: Number) -> "Triplet":
        """A certain quantity: all three bounds equal ``value``."""
        v = float(value)
        return Triplet(v, v, v)

    @staticmethod
    def spread(ml: Number, rel_lb: float, rel_ub: float) -> "Triplet":
        """A triplet from a most-likely value and relative bound factors.

        ``rel_lb`` and ``rel_ub`` are multiplicative factors, e.g.
        ``Triplet.spread(100, 0.9, 1.25)`` gives (90, 100, 125).
        """
        if rel_lb > 1.0 or rel_ub < 1.0:
            raise ValueError(
                f"need rel_lb <= 1 <= rel_ub, got {rel_lb}, {rel_ub}"
            )
        m = float(ml)
        if m >= 0:
            return Triplet(m * rel_lb, m, m * rel_ub)
        # Negative most-likely values flip the factor roles.
        return Triplet(m * rel_ub, m, m * rel_lb)

    @staticmethod
    def zero() -> "Triplet":
        """The additive identity."""
        return Triplet(0.0, 0.0, 0.0)

    @staticmethod
    def sum(items: Iterable["Triplet"]) -> "Triplet":
        """Sum of a sequence of triplets (bound-wise)."""
        lb = ml = ub = 0.0
        for item in items:
            lb += item.lb
            ml += item.ml
            ub += item.ub
        return Triplet(lb, ml, ub)

    @staticmethod
    def max(items: Iterable["Triplet"]) -> "Triplet":
        """Bound-wise maximum; identity is the zero triplet.

        Used where a system quantity is set by its slowest contributor
        (e.g. the paper's "performance of each combination is upper bounded
        and set by the slowest partition implementation").
        """
        lb = ml = ub = 0.0
        first = True
        for item in items:
            if first:
                lb, ml, ub = item.lb, item.ml, item.ub
                first = False
            else:
                lb = max(lb, item.lb)
                ml = max(ml, item.ml)
                ub = max(ub, item.ub)
        return Triplet(lb, ml, ub)

    # ------------------------------------------------------------------
    # arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other: "Triplet | Number") -> "Triplet":
        other = _coerce(other)
        return Triplet(self.lb + other.lb, self.ml + other.ml, self.ub + other.ub)

    __radd__ = __add__

    def __sub__(self, other: "Triplet | Number") -> "Triplet":
        """Bound-propagating subtraction: worst case pairs lb with ub."""
        other = _coerce(other)
        return Triplet(self.lb - other.ub, self.ml - other.ml, self.ub - other.lb)

    def __mul__(self, factor: Number) -> "Triplet":
        """Scale by a certain non-negative-or-negative scalar."""
        f = float(factor)
        if f >= 0:
            return Triplet(self.lb * f, self.ml * f, self.ub * f)
        return Triplet(self.ub * f, self.ml * f, self.lb * f)

    __rmul__ = __mul__

    def __truediv__(self, divisor: Number) -> "Triplet":
        d = float(divisor)
        if d == 0:
            raise ZeroDivisionError("triplet division by zero")
        return self * (1.0 / d)

    def scale_bounds(self, rel_lb: float, rel_ub: float) -> "Triplet":
        """Widen (or tighten) the bounds around the most-likely value."""
        lb = min(self.lb * rel_lb, self.ml)
        ub = max(self.ub * rel_ub, self.ml)
        return Triplet(lb, self.ml, ub)

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    @property
    def width(self) -> float:
        """Spread between the bounds (zero for exact values)."""
        return self.ub - self.lb

    @property
    def is_exact(self) -> bool:
        return self.lb == self.ml == self.ub

    def certainly_le(self, limit: Number) -> bool:
        """True when even the upper bound satisfies ``X <= limit``."""
        return self.ub <= float(limit)

    def certainly_gt(self, limit: Number) -> bool:
        """True when even the lower bound violates ``X <= limit``."""
        return self.lb > float(limit)

    def __format__(self, spec: str) -> str:
        if not spec:
            spec = ".6g"
        return (
            f"({self.lb:{spec}}, {self.ml:{spec}}, {self.ub:{spec}})"
        )

    def __str__(self) -> str:
        return format(self)


def _coerce(value: "Triplet | Number") -> Triplet:
    if isinstance(value, Triplet):
        return value
    return Triplet.exact(value)
