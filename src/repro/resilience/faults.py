"""Deterministic fault injection for resilience tests.

Faults are declared in the ``$CHOP_FAULTS`` environment variable as a
comma-separated spec and fire at named *sites* compiled into the
production code paths (:func:`maybe_inject` calls).  The environment is
the transport deliberately: worker *processes* inherit it under both
``fork`` and ``spawn``, so a single spec reaches every layer of the
engine without any plumbing.

Spec grammar (whitespace-free)::

    CHOP_FAULTS="shard=2,cache_store=1,cache_store_delay=0.05"

Site semantics:

====================  =================================================
``shard=N``           ``InjectedFault`` in the worker evaluating shard
                      index ``N`` (every parallel run; the engine's
                      serial retry path does not re-fire it)
``shard_exit=N``      hard ``os._exit(13)`` of the worker holding shard
                      ``N`` — a true process death, breaks the pool
``cache_store=K``     ``InjectedFault`` on the first ``K`` prediction-
                      cache writes of this process — the site sits in
                      the :class:`repro.cache.CacheBackend` interface
                      layer, so it fires for every backend (disk,
                      shared multi-writer)
``cache_load=K``      ``InjectedFault`` on the first ``K`` prediction-
                      cache reads of this process (observed as a miss),
                      likewise backend-agnostic
``cache_store_delay=S``  sleep ``S`` seconds before every cache write
``job=K``             ``InjectedFault`` in the first ``K`` service job
                      bodies of this process
====================  =================================================

:class:`InjectedFault` subclasses :class:`OSError` on purpose: the
engine's crash path and the cache's defect handling already classify
``OSError`` as "infrastructure died", so injected faults exercise the
*same* recovery branches a real worker death or disk error would.

When ``$CHOP_FAULTS`` is unset, :func:`maybe_inject` is one dict lookup
— the hooks cost nothing in production.
"""

from __future__ import annotations

import os
import threading
import time
from typing import Dict, Optional

#: Environment variable carrying the active fault spec.
FAULTS_ENV = "CHOP_FAULTS"

#: Sites where the value means "fire when index == value".
_INDEXED_SITES = frozenset({"shard", "shard_exit"})

#: Sites where the value means "fire on the first value invocations".
_COUNTED_SITES = frozenset({"cache_store", "cache_load", "job"})

#: Sites where the value means "sleep value seconds".
_DELAY_SITES = frozenset({"cache_store_delay"})

_KNOWN_SITES = _INDEXED_SITES | _COUNTED_SITES | _DELAY_SITES

#: Exit status of a ``shard_exit`` worker death (mirrors the engine
#: test-suite's hand-rolled ``os._exit(13)`` crash idiom).
EXIT_STATUS = 13


class InjectedFault(OSError):
    """A deliberately injected failure (an ``OSError`` by design)."""


class FaultPlan:
    """A parsed ``$CHOP_FAULTS`` spec."""

    def __init__(self, spec: str = "") -> None:
        self.spec = spec
        self.sites: Dict[str, float] = {}
        for entry in filter(None, (p.strip() for p in spec.split(","))):
            site, sep, raw = entry.partition("=")
            if not sep or site not in _KNOWN_SITES:
                raise ValueError(
                    f"bad fault spec entry {entry!r}; known sites: "
                    f"{sorted(_KNOWN_SITES)}"
                )
            try:
                value = float(raw)
            except ValueError:
                raise ValueError(
                    f"fault site {site!r} needs a numeric value, "
                    f"got {raw!r}"
                ) from None
            if value < 0:
                raise ValueError(
                    f"fault site {site!r} needs a non-negative value"
                )
            self.sites[site] = value

    def value(self, site: str) -> Optional[float]:
        return self.sites.get(site)


# Per-process counters for the first-K sites.  They survive spec
# re-parses on purpose: "the first K stores of this process" must not
# reset just because the env was re-read.
_counter_lock = threading.Lock()
_counters: Dict[str, int] = {}


def reset_counters() -> None:
    """Forget the per-process first-K tallies (test isolation)."""
    with _counter_lock:
        _counters.clear()


def active_plan() -> Optional[FaultPlan]:
    """The current plan, or ``None`` when no faults are configured.

    Parsed from the environment on every call — the spec is tiny and
    re-reading keeps ``monkeypatch.setenv`` test flows working without
    any cache-invalidation protocol.
    """
    spec = os.environ.get(FAULTS_ENV)
    if not spec:
        return None
    return FaultPlan(spec)


def maybe_inject(site: str, index: Optional[int] = None) -> None:
    """Fire the configured fault for ``site``, if any.

    Raises :class:`InjectedFault`, sleeps, or exits the process,
    according to the site's semantics; returns silently otherwise.
    """
    plan = active_plan()
    if plan is None:
        return
    value = plan.value(site)
    if value is None:
        return
    if site in _DELAY_SITES:
        time.sleep(value)
        return
    if site in _INDEXED_SITES:
        if index is None or index != int(value):
            return
        if site == "shard_exit":
            os._exit(EXIT_STATUS)
        raise InjectedFault(
            f"injected fault at {site} index {index}"
        )
    # first-K counted site
    with _counter_lock:
        fired = _counters.get(site, 0)
        if fired >= int(value):
            return
        _counters[site] = fired + 1
    raise InjectedFault(
        f"injected fault at {site} (firing {fired + 1} of {int(value)})"
    )
