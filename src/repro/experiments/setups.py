"""Session builders for the paper's experiments."""

from __future__ import annotations

from typing import Optional

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.dfg.benchmarks import ar_lattice_filter
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError
from repro.library.presets import table1_library

#: "The main clock cycle ... was set to 300ns" (section 3).
MAIN_CLOCK_NS = 300.0

#: "We first set the performance and delay constraints to 30000ns."
EXPERIMENT1_CRITERIA = FeasibilityCriteria(
    performance_ns=30_000.0, delay_ns=30_000.0
)

#: "The performance constraint is tightened to 20,000ns" (section 3.2).
EXPERIMENT2_CRITERIA = FeasibilityCriteria(
    performance_ns=20_000.0, delay_ns=30_000.0
)


def experiment1_clocks() -> ClockScheme:
    """Experiment 1: datapath clock 10x main, transfer clock = main."""
    return ClockScheme(
        MAIN_CLOCK_NS, dp_multiplier=10, transfer_multiplier=1
    )


def experiment2_clocks() -> ClockScheme:
    """Experiment 2: both clocks at main-clock speed."""
    return ClockScheme(MAIN_CLOCK_NS, dp_multiplier=1, transfer_multiplier=1)


def experiment_session(
    graph: DataFlowGraph,
    clocks: ClockScheme,
    style: ArchitectureStyle,
    criteria: FeasibilityCriteria,
    package_number: int,
    partition_count: int,
) -> ChopSession:
    """A session with ``partition_count`` horizontal-cut partitions,
    each manually assigned to its own chip of the given package — the
    paper's experimental protocol ("in all cases, each partition was
    manually assigned to a separate chip")."""
    if partition_count < 1:
        raise PartitioningError(
            f"partition count must be >= 1, got {partition_count}"
        )
    session = ChopSession(
        graph=graph,
        library=table1_library(),
        clocks=clocks,
        style=style,
        criteria=criteria,
    )
    partitions = horizontal_cut(graph, partition_count)
    assignment = {}
    for index, partition in enumerate(partitions):
        chip_name = f"chip{index + 1}"
        session.add_chip(chip_name, mosis_package(package_number))
        assignment[partition.name] = chip_name
    session.set_partitions(partitions, assignment)
    return session


def experiment1_session(
    package_number: int = 2,
    partition_count: int = 1,
    graph: Optional[DataFlowGraph] = None,
) -> ChopSession:
    """One cell of the paper's experiment 1."""
    return experiment_session(
        graph=graph if graph is not None else ar_lattice_filter(),
        clocks=experiment1_clocks(),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=EXPERIMENT1_CRITERIA,
        package_number=package_number,
        partition_count=partition_count,
    )


def experiment2_session(
    partition_count: int = 1,
    package_number: int = 2,
    graph: Optional[DataFlowGraph] = None,
) -> ChopSession:
    """One cell of the paper's experiment 2 (package 2 throughout)."""
    return experiment_session(
        graph=graph if graph is not None else ar_lattice_filter(),
        clocks=experiment2_clocks(),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=EXPERIMENT2_CRITERIA,
        package_number=package_number,
        partition_count=partition_count,
    )
