"""Operation types recognised by the predictor and partitioner.

The compute types map to library components (Table 1 of the paper has
addition and multiplication; we add the other types classic HLS libraries
carry).  The memory types model the paper's memory-mapped I/O: "I/O
operations are modeled as memory-mapped I/O" (section 2.4), so reads and
writes against a memory block are first-class operations that consume
memory bandwidth and chip pins.
"""

from __future__ import annotations

import enum


class OpType(enum.Enum):
    """Kinds of operations a data-flow graph node can perform."""

    ADD = "add"
    SUB = "sub"
    MUL = "mul"
    DIV = "div"
    COMPARE = "cmp"
    SHIFT = "shift"
    AND = "and"
    OR = "or"
    #: Read one word from a memory block (memory-mapped I/O included).
    MEM_READ = "mem_read"
    #: Write one word to a memory block (memory-mapped I/O included).
    MEM_WRITE = "mem_write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Types implemented by datapath components from the library.
COMPUTE_OP_TYPES = frozenset(
    {
        OpType.ADD,
        OpType.SUB,
        OpType.MUL,
        OpType.DIV,
        OpType.COMPARE,
        OpType.SHIFT,
        OpType.AND,
        OpType.OR,
    }
)

#: Types served by memory blocks rather than datapath components.
MEMORY_OP_TYPES = frozenset({OpType.MEM_READ, OpType.MEM_WRITE})
