"""JSON import/export of specifications, libraries, chip sets and
whole designer projects.

The paper's six input groups (section 2.2) map onto one JSON document —
see :mod:`repro.io.project` for the schema — so a session can be stored,
versioned and rerun from the command line (:mod:`repro.cli`).
"""

from repro.io.graphs import graph_from_dict, graph_to_dict
from repro.io.project import (
    canonical_project_bytes,
    load_project,
    load_project_file,
    project_fingerprint,
    save_project_file,
    session_to_dict,
)

__all__ = [
    "canonical_project_bytes",
    "graph_from_dict",
    "graph_to_dict",
    "load_project",
    "load_project_file",
    "project_fingerprint",
    "save_project_file",
    "session_to_dict",
]
