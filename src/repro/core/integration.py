"""System-integration prediction (section 2.5 of the paper).

Given one selected implementation (a :class:`DesignPrediction`) per
partition and a tentative system initiation interval, :func:`integrate`
predicts the whole multi-chip system: transfer bandwidths and durations,
the urgency schedule over shared pins, data-transfer modules and their
buffers, per-chip area with pin multiplexing, the adjusted clock cycle,
and the resulting system performance and delay.

Hard impossibilities — data-rate mismatches between pipelined partitions,
transfers longer than the initiation interval, pins oversubscribed at the
requested rate, memory bandwidth exceeded — raise
:class:`~repro.errors.InfeasibleError`.  Soft constraint checking against
the designer's criteria lives in :mod:`repro.core.feasibility`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bad.controller import PlaParameters
from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.chips.chip import PinBudget, pin_budget
from repro.core.partitioning import Partitioning
from repro.core.tasks import (
    TaskGraph,
    TaskKind,
    build_task_graph,
    memory_interfaces,
)
from repro.core.transfer import (
    DataTransferModule,
    TransferEstimate,
    data_transfer_module,
    estimate_transfer,
)
from repro.core.urgency import TaskSchedule, urgency_schedule
from repro.errors import InfeasibleError, PredictionError
from repro.library.library import ComponentLibrary
from repro.memory.access import memory_access_profile
from repro.stats import Triplet
from repro.units import ceil_div

#: Relative bounds widening the clock-overhead estimate into a triplet.
_CLOCK_OVERHEAD_REL_LB = 0.92
_CLOCK_OVERHEAD_REL_UB = 1.15

#: Power of one transfer-module buffer bit switching at transfer rate
#: and of one driven I/O pad (3-micron, 5 V), in milliwatts.
_DTM_MW_PER_BUFFER_BIT = 0.004
_PAD_DRIVER_MW = 0.6


@dataclass(frozen=True, slots=True)
class ChipUsage:
    """Predicted occupancy of one chip."""

    chip: str
    partitions: Tuple[str, ...]
    pu_area: Triplet
    dtm_area: Triplet
    pin_mux_area: Triplet
    memory_area: Triplet
    usable_area_mil2: float
    bonded_pins: int
    #: Delay contribution of this chip to the adjusted clock, in ns.
    clock_overhead_ns: float
    #: Predicted average power drawn by the chip, in milliwatts.
    power_mw: Triplet = Triplet.zero()

    @property
    def total_area(self) -> Triplet:
        return Triplet.sum(
            (self.pu_area, self.dtm_area, self.pin_mux_area, self.memory_area)
        )


@dataclass(frozen=True, slots=True)
class SystemPrediction:
    """One predicted implementation of the whole partitioned system."""

    partitioning: Partitioning
    selection: Mapping[str, DesignPrediction]
    #: System initiation interval and delay in main-clock cycles.
    ii_main: int
    delay_main: int
    #: Adjusted clock cycle (main cycle plus integration overhead).
    clock_cycle_ns: Triplet
    chip_usage: Mapping[str, ChipUsage]
    transfers: Mapping[str, TransferEstimate]
    transfer_modules: Tuple[DataTransferModule, ...]
    schedule: TaskSchedule

    @property
    def performance_ns(self) -> Triplet:
        """Predicted initiation interval in nanoseconds."""
        return self.clock_cycle_ns * self.ii_main

    @property
    def delay_ns(self) -> Triplet:
        """Predicted input-to-output delay in nanoseconds."""
        return self.clock_cycle_ns * self.delay_main

    @property
    def power_mw(self) -> Triplet:
        """Predicted system power: the sum over all chips."""
        return Triplet.sum(
            usage.power_mw for usage in self.chip_usage.values()
        )

    def summary_row(self) -> Dict[str, object]:
        """The columns the paper's Tables 4 and 6 report per design."""
        return {
            "initiation_interval": self.ii_main,
            "delay": self.delay_main,
            "clock_cycle_ns": round(self.clock_cycle_ns.ml, 1),
        }


def integrate(
    partitioning: Partitioning,
    selection: Mapping[str, DesignPrediction],
    ii_main: int,
    clocks: ClockScheme,
    library: ComponentLibrary,
    task_graph: Optional[TaskGraph] = None,
    pla_params: PlaParameters = PlaParameters(),
) -> SystemPrediction:
    """Predict the integrated system for one selection of implementations.

    ``ii_main`` is the tentative system initiation interval in main-clock
    cycles; it must be at least every selected implementation's interval
    and exactly the common rate of all pipelined implementations.
    ``task_graph`` may be passed in to amortise its construction across
    the many selections the search heuristics try.
    """
    _check_selection(partitioning, selection, ii_main)
    if task_graph is None:
        task_graph = build_task_graph(partitioning)

    budgets = _pin_budgets(partitioning, task_graph)
    capacity = {
        chip: budgets[chip].data - task_graph.memory_pin_loads.get(chip, 0)
        for chip in partitioning.chips
    }
    for chip, free in capacity.items():
        if free < 0:
            raise InfeasibleError(
                f"chip {chip!r}: memory I/O needs more pins than the "
                "package provides"
            )

    _check_memory_bandwidth(partitioning, ii_main, clocks)

    transfers: Dict[str, TransferEstimate] = {}
    durations: Dict[str, int] = {}
    pin_needs: Dict[str, int] = {}
    for name, task in task_graph.tasks.items():
        if task.kind is TaskKind.PROCESS:
            assert task.partition is not None
            durations[name] = selection[task.partition].latency_main
            continue
        estimate = estimate_transfer(
            task, budgets, task_graph.memory_pin_loads, clocks
        )
        transfers[name] = estimate
        durations[name] = estimate.duration_main
        pin_needs[name] = estimate.pins

    schedule = urgency_schedule(
        task_graph, durations, pin_needs, capacity, ii_main
    )

    modules = _transfer_modules(
        task_graph, transfers, schedule, ii_main, clocks, library, pla_params
    )

    chip_usage = _chip_usage(
        partitioning, task_graph, selection, transfers, modules,
        budgets, clocks, library,
    )

    overhead = max(
        (usage.clock_overhead_ns for usage in chip_usage.values()),
        default=0.0,
    )
    clock = Triplet(
        clocks.main_cycle_ns + overhead * _CLOCK_OVERHEAD_REL_LB,
        clocks.main_cycle_ns + overhead,
        clocks.main_cycle_ns + overhead * _CLOCK_OVERHEAD_REL_UB,
    )

    return SystemPrediction(
        partitioning=partitioning,
        selection=dict(selection),
        ii_main=ii_main,
        delay_main=schedule.makespan,
        clock_cycle_ns=clock,
        chip_usage=chip_usage,
        transfers=transfers,
        transfer_modules=tuple(modules),
        schedule=schedule,
    )


# ----------------------------------------------------------------------
# helpers
# ----------------------------------------------------------------------
def _check_selection(
    partitioning: Partitioning,
    selection: Mapping[str, DesignPrediction],
    ii_main: int,
) -> None:
    missing = set(partitioning.partitions) - set(selection)
    if missing:
        raise PredictionError(
            f"selection misses partitions: {sorted(missing)}"
        )
    pipelined_rates = {
        pred.ii_main for pred in selection.values() if pred.pipelined
    }
    if len(pipelined_rates) > 1:
        raise InfeasibleError(
            "pipelined implementations have different data rates "
            f"({sorted(pipelined_rates)}); the combination is infeasible "
            "due to a data rate mismatch"
        )
    for name, pred in selection.items():
        if pred.ii_main > ii_main:
            raise InfeasibleError(
                f"partition {name!r} cannot sustain initiation interval "
                f"{ii_main}: its implementation needs {pred.ii_main}"
            )


def _pin_budgets(
    partitioning: Partitioning, task_graph: TaskGraph
) -> Dict[str, PinBudget]:
    interfaces = memory_interfaces(partitioning)
    budgets: Dict[str, PinBudget] = {}
    for chip_name, chip in partitioning.chips.items():
        budgets[chip_name] = pin_budget(
            chip.package,
            communication_links=task_graph.communication_links(chip_name),
            memory_blocks=len(interfaces.get(chip_name, ())),
        )
    return budgets


def _check_memory_bandwidth(
    partitioning: Partitioning, ii_main: int, clocks: ClockScheme
) -> None:
    """Every block must serve one iteration's accesses within the interval."""
    if not partitioning.memories:
        return
    accesses: Dict[str, int] = {}
    profile = memory_access_profile(
        partitioning.graph, partitioning.graph.operations
    )
    for block in profile.blocks:
        accesses[block] = profile.accesses(block)
    window = ii_main // clocks.transfer_multiplier
    for block, count in accesses.items():
        module = partitioning.memories[block]
        needed = ceil_div(count, module.ports)
        if needed > window:
            raise InfeasibleError(
                f"memory block {block!r} needs {needed} access cycles per "
                f"iteration but the initiation interval allows {window}"
            )


def _transfer_modules(
    task_graph: TaskGraph,
    transfers: Mapping[str, TransferEstimate],
    schedule: TaskSchedule,
    ii_main: int,
    clocks: ClockScheme,
    library: ComponentLibrary,
    pla_params: PlaParameters,
) -> List[DataTransferModule]:
    modules: List[DataTransferModule] = []
    for name, estimate in sorted(transfers.items()):
        task = task_graph.tasks[name]
        wait = schedule.wait.get(name, 0)
        hold = schedule.hold.get(name, 0)
        if task.kind is TaskKind.TRANSFER:
            src_chip, dst_chips = task.chips[0], task.chips[1:]
            modules.append(
                data_transfer_module(
                    task, src_chip, "output", estimate, wait, ii_main,
                    clocks, library.register, pla_params,
                )
            )
            for chip in dst_chips:
                modules.append(
                    data_transfer_module(
                        task, chip, "input", estimate, hold, ii_main,
                        clocks, library.register, pla_params,
                    )
                )
        elif task.kind is TaskKind.INPUT:
            modules.append(
                data_transfer_module(
                    task, task.chips[0], "input", estimate, hold, ii_main,
                    clocks, library.register, pla_params,
                )
            )
        else:  # OUTPUT
            modules.append(
                data_transfer_module(
                    task, task.chips[0], "output", estimate, wait, ii_main,
                    clocks, library.register, pla_params,
                )
            )
    return modules


def _chip_usage(
    partitioning: Partitioning,
    task_graph: TaskGraph,
    selection: Mapping[str, DesignPrediction],
    transfers: Mapping[str, TransferEstimate],
    modules: List[DataTransferModule],
    budgets: Mapping[str, PinBudget],
    clocks: ClockScheme,
    library: ComponentLibrary,
) -> Dict[str, ChipUsage]:
    usage: Dict[str, ChipUsage] = {}
    for chip_name, chip in partitioning.chips.items():
        partition_names = tuple(partitioning.partitions_on_chip(chip_name))
        pu_area = Triplet.sum(
            selection[p].area_total for p in partition_names
        )
        chip_modules = [m for m in modules if m.chip == chip_name]
        dtm_area = Triplet.sum(m.area_mil2 for m in chip_modules)

        # Pin multiplexing: several data tasks sharing this chip's data
        # pins need steering on each shared pin.
        chip_tasks = [
            transfers[name]
            for name, task in task_graph.tasks.items()
            if task.moves_data and chip_name in task.chips
        ]
        pin_mux_bits = 0
        pin_mux_delay = 0.0
        if len(chip_tasks) > 1:
            widest = max(t.pins for t in chip_tasks)
            pin_mux_bits = (len(chip_tasks) - 1) * widest
            pin_mux_delay = library.mux.delay_ns
        pin_mux_area = (
            Triplet.spread(
                library.mux.area_for_bits(pin_mux_bits), 0.95, 1.10
            )
            if pin_mux_bits
            else Triplet.zero()
        )

        memory_area_ml = sum(
            partitioning.memories[block].on_chip_area_mil2()
            for block in partitioning.memories_on_chip(chip_name)
        )
        memory_area = (
            Triplet.spread(memory_area_ml, 0.95, 1.10)
            if memory_area_ml
            else Triplet.zero()
        )

        # The package's pad ring is fixed: every package pin carries a
        # bonded pad whether or not the design drives it, so the full
        # pin count's pad area is subtracted from the die (Table 2 lists
        # per-pad area alongside fixed pin counts).
        bonded = chip.package.pin_count

        dp_overhead = max(
            (selection[p].clock_overhead_ns for p in partition_names),
            default=0.0,
        )
        transfer_overhead = 0.0
        if chip_tasks:
            transfer_overhead = chip.package.pad_delay_ns + pin_mux_delay
            dtm_delays = [m.control_delay_ns for m in chip_modules]
            if dtm_delays:
                transfer_overhead += max(dtm_delays)
        # Transfers synchronize to datapath-cycle boundaries, so the whole
        # integration overhead is absorbed once per datapath cycle: the
        # reported main clock stretches by overhead / dp_multiplier.  This
        # reproduces the paper's adjusted clocks (~310 ns in experiment 1
        # where dp = 10x main, ~374-400 ns in experiment 2 where dp = main).
        overhead = (
            dp_overhead + transfer_overhead
        ) / clocks.dp_multiplier

        pu_power = Triplet.sum(
            selection[p].power_mw for p in partition_names
        )
        dtm_buffer_bits = sum(m.buffer_bits for m in chip_modules)
        driven_pads = max((t.pins for t in chip_tasks), default=0)
        integration_power = Triplet.spread(
            dtm_buffer_bits * _DTM_MW_PER_BUFFER_BIT
            + driven_pads * _PAD_DRIVER_MW,
            0.8,
            1.3,
        ) if (dtm_buffer_bits or driven_pads) else Triplet.zero()

        usage[chip_name] = ChipUsage(
            chip=chip_name,
            partitions=partition_names,
            pu_area=pu_area,
            dtm_area=dtm_area,
            pin_mux_area=pin_mux_area,
            memory_area=memory_area,
            usable_area_mil2=chip.package.usable_area_mil2(bonded),
            bonded_pins=bonded,
            clock_overhead_ns=overhead,
            power_mw=pu_power + integration_power,
        )
    return usage
