"""Incremental construction of data-flow graphs.

:class:`GraphBuilder` offers a small fluent API::

    b = GraphBuilder("example", default_width=16)
    x = b.input("x")
    k = b.input("k")
    p = b.op(OpType.MUL, x, k)           # auto-named value
    y = b.op(OpType.ADD, p, x, name="y")
    b.output(y)
    graph = b.build()

Each ``op`` call returns the produced value's id, so expressions compose
naturally.  The builder checks referential integrity as it goes and the
final :meth:`GraphBuilder.build` validates acyclicity.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.units import DEFAULT_BIT_WIDTH


class GraphBuilder:
    """Builds a :class:`DataFlowGraph` one operation at a time."""

    def __init__(self, name: str, default_width: int = DEFAULT_BIT_WIDTH) -> None:
        if default_width <= 0:
            raise SpecificationError(
                f"default width must be positive, got {default_width}"
            )
        self.name = name
        self.default_width = default_width
        self._operations: Dict[str, Operation] = {}
        self._values: Dict[str, Value] = {}
        self._op_counter = 0
        self._built = False

    # ------------------------------------------------------------------
    # node creation
    # ------------------------------------------------------------------
    def input(self, value_id: str, width: Optional[int] = None) -> str:
        """Declare a primary input value; returns its id."""
        self._require_open()
        if value_id in self._values:
            raise SpecificationError(f"duplicate value id {value_id!r}")
        self._values[value_id] = Value(
            id=value_id, width=width or self.default_width
        )
        return value_id

    def op(
        self,
        op_type: OpType,
        *inputs: str,
        name: Optional[str] = None,
        width: Optional[int] = None,
        memory_block: Optional[str] = None,
    ) -> str:
        """Add an operation consuming ``inputs``; returns the output value id.

        For :data:`OpType.MEM_WRITE` the return value is the operation id
        (writes produce no value).
        """
        self._require_open()
        for vid in inputs:
            if vid not in self._values:
                raise SpecificationError(
                    f"operation consumes undeclared value {vid!r}"
                )
        self._op_counter += 1
        op_id = f"{op_type.value}{self._op_counter}"
        if op_id in self._operations:  # defensive; counter makes this unlikely
            raise SpecificationError(f"duplicate operation id {op_id!r}")

        if op_type is OpType.MEM_WRITE:
            operation = Operation(
                id=op_id,
                op_type=op_type,
                inputs=tuple(inputs),
                output=None,
                memory_block=memory_block,
            )
            self._operations[op_id] = operation
            return op_id

        out_id = name if name is not None else f"v_{op_id}"
        if out_id in self._values:
            raise SpecificationError(f"duplicate value id {out_id!r}")
        operation = Operation(
            id=op_id,
            op_type=op_type,
            inputs=tuple(inputs),
            output=out_id,
            memory_block=memory_block,
        )
        self._operations[op_id] = operation
        self._values[out_id] = Value(
            id=out_id, width=width or self.default_width, producer=op_id
        )
        return out_id

    # Convenience wrappers for the common arithmetic types -------------
    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.ADD, a, b, name=name)

    def sub(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.SUB, a, b, name=name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.MUL, a, b, name=name)

    def mem_read(
        self, address: str, memory_block: str, name: Optional[str] = None
    ) -> str:
        return self.op(
            OpType.MEM_READ, address, name=name, memory_block=memory_block
        )

    def mem_write(self, value: str, memory_block: str) -> str:
        return self.op(OpType.MEM_WRITE, value, memory_block=memory_block)

    def output(self, value_id: str) -> None:
        """Mark an existing value as a primary output."""
        self._require_open()
        value = self._values.get(value_id)
        if value is None:
            raise SpecificationError(
                f"cannot mark unknown value {value_id!r} as output"
            )
        self._values[value_id] = Value(
            id=value.id,
            width=value.width,
            producer=value.producer,
            is_output=True,
        )

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> DataFlowGraph:
        """Finish construction and validate the graph."""
        self._require_open()
        self._built = True
        graph = DataFlowGraph(self.name, self._operations, self._values)
        graph.topological_order()  # raises on cycles
        return graph

    def _require_open(self) -> None:
        if self._built:
            raise SpecificationError(
                "builder already finalised; create a new GraphBuilder"
            )
