"""Tests for table/figure/guideline rendering."""

from __future__ import annotations

import pytest

from repro.chips.presets import mosis_packages
from repro.experiments import experiment1_session
from repro.reporting.figures import ascii_scatter, scatter_csv
from repro.reporting.guidelines import design_guidelines
from repro.reporting.tables import (
    format_table,
    library_table,
    package_table,
    prediction_stats_table,
    results_table,
)


@pytest.fixture(scope="module")
def search_result():
    session = experiment1_session(2, 2)
    return session.check("iterative")


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("A", "Long header"), [(1, 2), (333, 4)])
        lines = text.splitlines()
        assert lines[0].startswith("A")
        assert set(lines[1]) == {"-"}
        assert len(lines) == 4

    def test_empty_rows(self):
        text = format_table(("A",), [])
        assert "A" in text


class TestPaperTables:
    def test_library_table_lists_all_modules(self, library):
        text = library_table(library)
        for name in ("add1", "add2", "add3", "mul1", "mul2", "mul3",
                     "register", "mux"):
            assert name in text
        assert "4200" in text and "7370" in text

    def test_package_table(self):
        text = package_table(mosis_packages())
        assert "64" in text and "84" in text
        assert "311.02" in text
        assert "297.6" in text

    def test_prediction_stats_table(self):
        text = prediction_stats_table({1: (111, 5), 2: (207, 25)})
        assert "111" in text and "25" in text

    def test_results_table(self, search_result):
        text = results_table([(2, 2, "I", search_result)])
        assert "I" in text
        assert "Initiation interval" in text
        best = search_result.best()
        assert str(best.ii_main) in text

    def test_results_table_empty_run(self):
        from repro.search.results import SearchResult

        empty = SearchResult("iterative", 5, [], 0.01)
        text = results_table([(1, 2, "I", empty)])
        assert "-" in text


class TestGuidelines:
    def test_mentions_all_partitions(self, search_result):
        text = design_guidelines(search_result.best())
        assert "Partition P1" in text
        assert "Partition P2" in text
        assert "design style" in text
        assert "Data transfer modules" in text
        assert "Chip occupancy" in text


class TestFigures:
    def test_csv(self):
        text = scatter_csv([(1000.0, 50), (2000.5, 70)])
        lines = text.splitlines()
        assert lines[0] == "area_mil2,delay_cycles"
        assert lines[1] == "1000.0,50"

    def test_ascii_scatter_renders(self):
        points = [(float(i * 100), i) for i in range(1, 30)]
        text = ascii_scatter(points)
        assert "designs plotted" in text
        assert "area" in text and "delay" in text

    def test_ascii_scatter_empty(self):
        assert "empty" in ascii_scatter([])

    def test_ascii_scatter_single_point(self):
        text = ascii_scatter([(100.0, 5)])
        assert "1 designs plotted" in text

    def test_ascii_scatter_rejects_tiny_canvas(self):
        with pytest.raises(ValueError):
            ascii_scatter([(1.0, 1)], width=2, height=2)

    def test_density_glyphs(self):
        points = [(100.0, 5)] * 10 + [(200.0, 6)]
        text = ascii_scatter(points, width=20, height=5)
        assert "#" in text  # 10 overlapping designs
