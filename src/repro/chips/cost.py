"""Manufacturing-cost model for a partitioned design.

CHOP answers *feasible or infeasible*; the modern system-level question
(ChipletPart and its ancestors) is *cheapest feasible*.  This module
prices one tentative partitioning so the design-space explorer
(:mod:`repro.explore`) can trade cost against performance:

* **Die cost** — each chip's silicon, priced per good die.  Yield
  follows the negative-binomial model

  .. math:: Y(A) = (1 + A \\cdot D_0 / \\alpha)^{-\\alpha}

  with defect density :math:`D_0` (defects/cm^2) and clustering
  parameter :math:`\\alpha` (the Poisson model :math:`e^{-A D_0}` is
  the :math:`\\alpha \\to \\infty` limit).  Gross dies per wafer use
  the standard circle-packing estimate
  :math:`\\pi r^2 / A - 2 \\pi r / \\sqrt{2 A}`, and one good die costs
  ``wafer_cost / (gross_dies * yield)``.

* **Package cost** — per chip: a base price plus a per-pin premium on
  the package's pin count.

* **Substrate / integration cost** — grows with the chip count and
  with the cut bandwidth (total bits crossing chip boundaries per
  iteration): more chips and wider cuts mean more board/substrate
  routing layers.

* **Assembly yield** — every chip attach risks the whole assembly;
  the final cost is divided by ``assembly_yield ** chips``.

All areas flow in as mil^2 (the paper's unit) and are converted to
cm^2 internally.  :func:`partition_cost` prices a whole
:class:`~repro.core.chop.ChopSession`; the pure helpers
(:func:`die_yield`, :func:`gross_dies_per_wafer`, :func:`die_cost`)
are exposed for tests and for pricing hypothetical chips directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional

from repro.errors import ChipError

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.bad.prediction import DesignPrediction
    from repro.core.chop import ChopSession

#: mil^2 -> cm^2 (1 mil = 2.54e-3 cm).
MIL2_TO_CM2 = (2.54e-3) ** 2


@dataclass(frozen=True, slots=True)
class CostParameters:
    """Knobs of the cost model (defaults: early-90s MOSIS-class runs).

    The defaults are deliberately round: the explorer compares designs
    *relatively*, and every knob is a sweep axis a caller can override.
    """

    #: Processed-wafer price in dollars.
    wafer_cost: float = 1500.0
    #: Wafer diameter in millimetres (150 mm = the era's 6-inch line).
    wafer_diameter_mm: float = 150.0
    #: Defect density in defects per cm^2.
    defect_density_per_cm2: float = 2.0
    #: Negative-binomial clustering parameter; ``inf`` gives Poisson.
    clustering_alpha: float = 3.0
    #: Package price: base plus per-pin premium.
    package_base: float = 2.0
    package_per_pin: float = 0.05
    #: Substrate / board integration: per extra chip and per cut bit.
    substrate_per_chip: float = 1.5
    substrate_per_cut_bit: float = 0.02
    #: Probability one chip attach succeeds.
    assembly_yield: float = 0.99

    def validate(self) -> None:
        if self.wafer_cost <= 0:
            raise ChipError(
                f"wafer_cost must be positive, got {self.wafer_cost}"
            )
        if self.wafer_diameter_mm <= 0:
            raise ChipError("wafer_diameter_mm must be positive")
        if self.defect_density_per_cm2 < 0:
            raise ChipError("defect_density_per_cm2 must be non-negative")
        if self.clustering_alpha <= 0:
            raise ChipError("clustering_alpha must be positive")
        if min(self.package_base, self.package_per_pin,
               self.substrate_per_chip, self.substrate_per_cut_bit) < 0:
            raise ChipError("cost components must be non-negative")
        if not 0 < self.assembly_yield <= 1:
            raise ChipError(
                f"assembly_yield must be in (0, 1], got "
                f"{self.assembly_yield}"
            )


def die_yield(area_mil2: float, params: CostParameters) -> float:
    """Fraction of good dies at ``area_mil2`` (negative binomial).

    Monotonically non-increasing in area; 1.0 at zero area.  With
    ``clustering_alpha = inf`` this is the Poisson ``exp(-A*D0)``.
    """
    if area_mil2 < 0:
        raise ChipError(f"die area must be non-negative, got {area_mil2}")
    defects = area_mil2 * MIL2_TO_CM2 * params.defect_density_per_cm2
    if defects == 0.0:
        return 1.0
    if math.isinf(params.clustering_alpha):
        return math.exp(-defects)
    return (1.0 + defects / params.clustering_alpha) ** (
        -params.clustering_alpha
    )


def gross_dies_per_wafer(
    area_mil2: float, params: CostParameters
) -> float:
    """Gross die sites on one wafer (circle-packing estimate).

    Zero when the die does not fit the wafer at all; callers treat that
    as an unmanufacturable chip.
    """
    if area_mil2 <= 0:
        return math.inf
    area_cm2 = area_mil2 * MIL2_TO_CM2
    radius_cm = params.wafer_diameter_mm / 20.0  # mm -> cm, /2
    wafer_cm2 = math.pi * radius_cm * radius_cm
    dies = (
        wafer_cm2 / area_cm2
        - math.pi * 2.0 * radius_cm / math.sqrt(2.0 * area_cm2)
    )
    return max(0.0, dies)


def die_cost(area_mil2: float, params: CostParameters) -> float:
    """Dollars per *good* die of ``area_mil2``.

    Zero-area dies are free; a die too large to yield a single site
    (or whose yield underflows to zero) raises :class:`ChipError` —
    the explorer treats such candidates as infeasible, it does not
    price them at infinity.
    """
    if area_mil2 < 0:
        raise ChipError(f"die area must be non-negative, got {area_mil2}")
    if area_mil2 == 0:
        return 0.0
    dies = gross_dies_per_wafer(area_mil2, params)
    if dies < 1.0:
        raise ChipError(
            f"a {area_mil2:.0f} mil^2 die does not fit a "
            f"{params.wafer_diameter_mm:.0f} mm wafer"
        )
    good = dies * die_yield(area_mil2, params)
    if good <= 0.0:
        raise ChipError(
            f"a {area_mil2:.0f} mil^2 die yields no good parts at "
            f"D0={params.defect_density_per_cm2}/cm^2"
        )
    return params.wafer_cost / good


@dataclass(frozen=True, slots=True)
class ChipCost:
    """Per-chip price breakdown."""

    chip: str
    area_mil2: float
    yield_fraction: float
    die: float
    package: float

    @property
    def total(self) -> float:
        return self.die + self.package

    def to_dict(self) -> Dict[str, object]:
        return {
            "chip": self.chip,
            "area_mil2": round(self.area_mil2, 2),
            "yield": round(self.yield_fraction, 6),
            "die_cost": round(self.die, 4),
            "package_cost": round(self.package, 4),
            "total": round(self.total, 4),
        }


@dataclass(frozen=True, slots=True)
class CostReport:
    """The priced partitioning: per-chip parts plus system-level terms."""

    chips: List[ChipCost]
    cut_bits: int
    substrate: float
    assembly_yield: float
    parameters: CostParameters = field(repr=False, default=CostParameters())

    @property
    def die_total(self) -> float:
        return sum(chip.die for chip in self.chips)

    @property
    def package_total(self) -> float:
        return sum(chip.package for chip in self.chips)

    @property
    def pre_assembly(self) -> float:
        return self.die_total + self.package_total + self.substrate

    @property
    def total(self) -> float:
        """The headline number: every part, divided by assembly yield."""
        return self.pre_assembly / self.assembly_yield

    def to_dict(self) -> Dict[str, object]:
        return {
            "total": round(self.total, 4),
            "die": round(self.die_total, 4),
            "package": round(self.package_total, 4),
            "substrate": round(self.substrate, 4),
            "assembly_yield": round(self.assembly_yield, 6),
            "cut_bits": self.cut_bits,
            "chips": [chip.to_dict() for chip in self.chips],
        }


def partition_cost(
    session: "ChopSession",
    selection: Optional[Mapping[str, "DesignPrediction"]] = None,
    params: Optional[CostParameters] = None,
) -> CostReport:
    """Price the session's current partitioning.

    ``selection`` maps partition names to the chosen
    :class:`~repro.bad.prediction.DesignPrediction` (a feasible
    design's ``selection``); each chip's die area is then the most
    likely predicted logic area of the partitions placed on it.
    Without a selection the model falls back to the package's full
    project area — the pessimistic "you pay for the whole die you
    bought" price.

    Cut bandwidth (the substrate term) is the total bit width of the
    partitioning's inter-chip transfer tasks per iteration, straight
    from the paper's task graph (Figure 3).
    """
    # Imported lazily: repro.chips sits below repro.core in the layer
    # diagram; only this session-facing entry point reaches upward.
    from repro.core.tasks import TaskKind, build_task_graph

    params = params or CostParameters()
    params.validate()
    partitioning = session.partitioning()

    # Only chips that actually host a partition are priced: an unused
    # chip in the designer's chip set is inventory, not product.
    area_by_chip: Dict[str, float] = {}
    if selection is not None:
        for part_name, prediction in selection.items():
            chip_name = partitioning.chip_of(part_name)
            area_by_chip[chip_name] = (
                area_by_chip.get(chip_name, 0.0)
                + prediction.area_total.ml
            )
    else:
        for part_name in partitioning.partitions:
            chip_name = partitioning.chip_of(part_name)
            chip = partitioning.chips[chip_name]
            area_by_chip[chip_name] = chip.package.project_area_mil2

    task_graph = build_task_graph(partitioning)
    cut_bits = sum(
        task.bits
        for task in task_graph.tasks.values()
        if task.kind is TaskKind.TRANSFER
    )

    chips: List[ChipCost] = []
    for chip_name in sorted(area_by_chip):
        chip = partitioning.chips[chip_name]
        area = area_by_chip[chip_name]
        chips.append(
            ChipCost(
                chip=chip_name,
                area_mil2=area,
                yield_fraction=die_yield(area, params),
                die=die_cost(area, params),
                package=(
                    params.package_base
                    + params.package_per_pin * chip.package.pin_count
                ),
            )
        )

    count = len(chips)
    substrate = (
        params.substrate_per_chip * max(0, count - 1)
        + params.substrate_per_cut_bit * cut_bits
    )
    return CostReport(
        chips=chips,
        cut_bits=cut_bits,
        substrate=substrate,
        assembly_yield=params.assembly_yield ** count,
        parameters=params,
    )
