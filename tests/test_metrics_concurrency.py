"""Concurrency and percentile tests for the service metrics."""

from __future__ import annotations

import threading

from repro.service.metrics import Metrics, percentile


class TestPercentile:
    def test_interpolates_between_ranks(self):
        assert percentile([1.0, 2.0], 50) == 1.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 50) == 2.5
        assert percentile([1.0, 2.0, 3.0, 4.0], 25) == 1.75

    def test_endpoints_and_single_sample(self):
        samples = [5.0, 1.0, 3.0]
        assert percentile(samples, 0) == 1.0
        assert percentile(samples, 100) == 5.0
        assert percentile(samples, 50) == 3.0
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 95) == 7.0

    def test_out_of_range_q_clamps(self):
        assert percentile([1.0, 2.0], -10) == 1.0
        assert percentile([1.0, 2.0], 500) == 2.0

    def test_unsorted_input(self):
        assert percentile([4.0, 1.0, 3.0, 2.0], 50) == 2.5


class TestMetricsConcurrency:
    def test_concurrent_observe_and_snapshot_stay_consistent(self):
        """8 threads hammer observe() while snapshots run concurrently;
        totals must be exact and snapshots internally consistent."""
        metrics = Metrics()
        threads_n, per_thread = 8, 500
        barrier = threading.Barrier(threads_n + 1)
        errors = []

        def writer(index):
            try:
                barrier.wait(10)
                for i in range(per_thread):
                    metrics.observe(
                        f"GET /route{index % 2}", 0.001 * (i + 1), 200
                    )
            except Exception as exc:  # noqa: BLE001 — collect for assert
                errors.append(exc)

        def reader():
            try:
                barrier.wait(10)
                for _ in range(50):
                    snap = metrics.snapshot()
                    # A snapshot must always be internally consistent:
                    # the route counts sum to the grand total.
                    total = sum(
                        doc["count"] for doc in snap["routes"].values()
                    )
                    assert total == snap["requests_total"]
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [
            threading.Thread(target=writer, args=(i,))
            for i in range(threads_n)
        ]
        threads.append(threading.Thread(target=reader))
        for t in threads:
            t.start()
        for t in threads:
            t.join(30)

        assert not errors
        snap = metrics.snapshot()
        assert snap["requests_total"] == threads_n * per_thread
        assert snap["responses_by_status"] == {
            "200": threads_n * per_thread
        }
        assert sum(
            doc["count"] for doc in snap["routes"].values()
        ) == threads_n * per_thread
        for doc in snap["routes"].values():
            assert doc["latency_ms"]["p95"] >= doc["latency_ms"]["p50"]

    def test_gauge_suppliers_run_outside_the_metrics_lock(self):
        """A supplier that takes the metrics lock itself must not
        deadlock — snapshot() promises to call suppliers unlocked."""
        metrics = Metrics()
        acquired = []

        def supplier():
            # Would time out if snapshot() held the (non-reentrant)
            # lock while invoking us.
            got = metrics._lock.acquire(timeout=2)
            acquired.append(got)
            if got:
                metrics._lock.release()
            # The canonical re-entrancy hazard: a supplier recording a
            # metric of its own.
            metrics.observe("supplier /self", 0.001, 200)
            return {"ok": True}

        metrics.register_gauges("probe", supplier)
        snap = metrics.snapshot()
        assert acquired == [True]
        assert snap["probe"] == {"ok": True}
        # The supplier's own observe landed for the next snapshot.
        assert metrics.snapshot()["requests_total"] == 1
