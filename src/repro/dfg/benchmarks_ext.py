"""Additional benchmark graphs: 8-point DCT and radix-2 FFT.

These extend the classic set in :mod:`repro.dfg.benchmarks` with the two
transform kernels most partitioning papers of the era exercised.  The
DCT follows the Loeffler factorization's structure (three-multiplier
rotations; 11 multiplications total); the FFT generator is parametric in
the transform size and flattens complex butterflies into real
operations, producing the large regular graphs useful for scaling
studies.
"""

from __future__ import annotations

import math
from typing import Tuple

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph
from repro.errors import SpecificationError


def _rotation(
    b: GraphBuilder, a: str, c: str, k1: str, k2: str, k3: str
) -> Tuple[str, str]:
    """Three-multiplier rotation: (a, c) -> (a', c').

    ``a' = a*k1 + (a+c)*k3`` and ``c' = (a+c)*k3 - c*k2`` — the standard
    strength-reduced form using 3 multiplications and 3 additions.
    """
    m1 = b.mul(a, k1)
    m2 = b.mul(c, k2)
    total = b.add(a, c)
    m3 = b.mul(total, k3)
    out_a = b.add(m1, m3)
    out_c = b.sub(m3, m2)
    return out_a, out_c


def dct8(width: int = 16) -> DataFlowGraph:
    """An 8-point DCT in the Loeffler style: 11 multiplications.

    Eight sample inputs, ten rotation/scale coefficients, eight
    transform outputs.
    """
    b = GraphBuilder("dct8", default_width=width)
    x = [b.input(f"x{i}") for i in range(8)]
    k = [b.input(f"k{i}") for i in range(1, 10)]
    c4 = b.input("c4")

    # Stage 1: input butterflies.
    s = [b.add(x[i], x[7 - i]) for i in range(4)]
    d = [b.sub(x[i], x[7 - i]) for i in range(4)]

    # Even part.
    t0 = b.add(s[0], s[3])
    t1 = b.add(s[1], s[2])
    t2 = b.sub(s[1], s[2])
    t3 = b.sub(s[0], s[3])
    x0 = b.add(t0, t1, name="X0")
    x4 = b.sub(t0, t1, name="X4")
    x2, x6 = _rotation(b, t3, t2, k[0], k[1], k[2])

    # Odd part: two rotations, then combine and scale.
    o1a, o1b = _rotation(b, d[0], d[3], k[3], k[4], k[5])
    o2a, o2b = _rotation(b, d[1], d[2], k[6], k[7], k[8])
    x1 = b.add(o1a, o2a, name="X1")
    x7 = b.sub(o1b, o2b, name="X7")
    u = b.sub(o1a, o2a)
    v = b.add(o1b, o2b)
    x3 = b.mul(u, c4, name="X3")
    x5 = b.mul(v, c4, name="X5")

    for out in (x0, x1, x2, x3, x4, x5, x6, x7):
        b.output(out)
    return b.build()


def fft_graph(points: int = 8, width: int = 16) -> DataFlowGraph:
    """A radix-2 decimation-in-time FFT flattened to real arithmetic.

    ``points`` must be a power of two (>= 2).  Each complex value is a
    (re, im) pair of 16-bit values; each butterfly is a complex multiply
    (4 mul + 2 add/sub) followed by a complex add and subtract (4
    add/sub), i.e. 10 operations.  The graph has
    ``points/2 * log2(points)`` butterflies.
    """
    if points < 2 or points & (points - 1):
        raise SpecificationError(
            f"FFT size must be a power of two >= 2, got {points}"
        )
    stages = int(math.log2(points))
    b = GraphBuilder(f"fft{points}", default_width=width)
    re = [b.input(f"re{i}") for i in range(points)]
    im = [b.input(f"im{i}") for i in range(points)]
    # Twiddle factors as inputs, one (re, im) pair per butterfly column.
    tw_re = [b.input(f"wr{i}") for i in range(points // 2)]
    tw_im = [b.input(f"wi{i}") for i in range(points // 2)]

    for stage in range(stages):
        span = 1 << stage
        next_re = list(re)
        next_im = list(im)
        for group in range(0, points, span * 2):
            for offset in range(span):
                top = group + offset
                bottom = top + span
                widx = (offset * (points // (span * 2))) % (points // 2)
                # Complex multiply: w * bottom.
                pr1 = b.mul(re[bottom], tw_re[widx])
                pr2 = b.mul(im[bottom], tw_im[widx])
                pi1 = b.mul(re[bottom], tw_im[widx])
                pi2 = b.mul(im[bottom], tw_re[widx])
                prod_re = b.sub(pr1, pr2)
                prod_im = b.add(pi1, pi2)
                # Butterfly add/sub.
                next_re[top] = b.add(re[top], prod_re)
                next_im[top] = b.add(im[top], prod_im)
                next_re[bottom] = b.sub(re[top], prod_re)
                next_im[bottom] = b.sub(im[top], prod_im)
        re = next_re
        im = next_im

    for i in range(points):
        b.output(re[i])
        b.output(im[i])
    return b.build()
