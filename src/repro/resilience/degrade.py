"""Graceful-degradation helpers.

CHOP's contract is "fast, or degraded, but never nothing": an
interactive check should return a *partial* verdict with an explicit
``degraded`` flag rather than hang past its wall-clock budget.  The
search heuristics take a :class:`SoftDeadline` as their ``soft_stop``
hook — unlike a ``cancel`` hook (which raises
:class:`~repro.errors.SearchCancelled` and discards everything), an
expired soft deadline just ends the walk early and keeps what was found.
"""

from __future__ import annotations

import time


class SoftDeadline:
    """A callable that starts returning ``True`` after a wall budget.

    The clock starts at construction; build one per check.  The search
    loops poll it between candidates, so expiry granularity is one
    combination — a loop always evaluates at least one candidate before
    it can stop, which keeps even a zero-ish budget from returning an
    empty non-answer.
    """

    def __init__(self, seconds: float) -> None:
        if seconds <= 0:
            raise ValueError(
                f"soft deadline must be positive, got {seconds}"
            )
        self.seconds = seconds
        self._expires_at = time.monotonic() + seconds

    def __call__(self) -> bool:
        return time.monotonic() >= self._expires_at

    expired = __call__

    def remaining_s(self) -> float:
        return max(0.0, self._expires_at - time.monotonic())

    def __repr__(self) -> str:  # pragma: no cover — debugging aid
        return (
            f"SoftDeadline({self.seconds}s, "
            f"{self.remaining_s():.3f}s left)"
        )
