"""Search over combinations of per-partition implementations.

"When multiple predicted implementations ... exist for partitions,
selecting only one implementation for each partition while satisfying
global design constraints ... is a hard problem" (section 2.4).  The
paper offers two run-time-selectable heuristics — explicit enumeration
and the iterative serialize-the-violators algorithm of Figure 5 — plus
two-level pruning of infeasible/inferior predictions and an optional
keep-everything mode used to draw the design-space figures.
"""

from repro.search.pareto import ParetoFront, dominates, pareto_front
from repro.search.pruning import (
    dominance_filter,
    level1_prune,
)
from repro.search.space import DesignPoint, DesignSpace
from repro.search.results import FeasibleDesign, SearchResult
from repro.search.enumeration import enumeration_search
from repro.search.iterative import iterative_search
from repro.search.advisor import (
    Advice,
    advise_memory_assignment,
    advise_partition_count,
)

__all__ = [
    "Advice",
    "advise_memory_assignment",
    "advise_partition_count",
    "ParetoFront",
    "dominance_filter",
    "dominates",
    "level1_prune",
    "pareto_front",
    "DesignPoint",
    "DesignSpace",
    "FeasibleDesign",
    "SearchResult",
    "enumeration_search",
    "iterative_search",
]
