"""Architecture styles and clocking schemes.

The paper's inputs include "tentative data path and data transfer clock
cycle times, the architecture style" where "the architecture style can
allow either single-cycle or multi-cycle operations, and be pipelined or
nonpipelined", and both clocks are "synchronous with frequencies being
multiples of the major clock frequency" (section 2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import PredictionError


class OperationTiming(enum.Enum):
    """How operations relate to the datapath clock.

    ``SINGLE_CYCLE``: every operation completes within one datapath cycle,
    so a module is only usable when its delay fits the cycle (experiment
    1's "widely used style among current datapath synthesis approaches").

    ``MULTI_CYCLE``: an operation may span several datapath cycles
    (``ceil(delay / cycle)``), letting a fast clock be used efficiently
    (experiment 2).
    """

    SINGLE_CYCLE = "single-cycle"
    MULTI_CYCLE = "multi-cycle"


@dataclass(frozen=True, slots=True)
class ClockScheme:
    """The three synchronous clocks of the paper's model.

    The main clock is the unit in which the tables report initiation
    intervals and delays.  The datapath clock is ``dp_multiplier`` main
    cycles long; the transfer clock ``transfer_multiplier`` main cycles.
    """

    main_cycle_ns: float
    dp_multiplier: int = 1
    transfer_multiplier: int = 1

    def __post_init__(self) -> None:
        if self.main_cycle_ns <= 0:
            raise PredictionError(
                f"main clock cycle must be positive, got {self.main_cycle_ns}"
            )
        if self.dp_multiplier < 1 or self.transfer_multiplier < 1:
            raise PredictionError(
                "clock multipliers must be positive integers (the clocks "
                "are synchronous multiples of the main clock)"
            )

    @property
    def dp_cycle_ns(self) -> float:
        """Datapath clock cycle in nanoseconds."""
        return self.main_cycle_ns * self.dp_multiplier

    @property
    def transfer_cycle_ns(self) -> float:
        """Data-transfer clock cycle in nanoseconds."""
        return self.main_cycle_ns * self.transfer_multiplier

    def dp_cycles_to_main(self, dp_cycles: int) -> int:
        """Convert a datapath-cycle count to main-clock cycles."""
        return dp_cycles * self.dp_multiplier

    def transfer_cycles_to_main(self, transfer_cycles: int) -> int:
        """Convert a transfer-cycle count to main-clock cycles."""
        return transfer_cycles * self.transfer_multiplier


@dataclass(frozen=True, slots=True)
class ArchitectureStyle:
    """Which design styles the predictor may explore."""

    timing: OperationTiming = OperationTiming.SINGLE_CYCLE
    allow_pipelined: bool = True
    allow_nonpipelined: bool = True

    def __post_init__(self) -> None:
        if not (self.allow_pipelined or self.allow_nonpipelined):
            raise PredictionError(
                "architecture style must allow at least one design style"
            )
