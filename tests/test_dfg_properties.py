"""Property-based tests on random data-flow graphs."""

from __future__ import annotations

from hypothesis import given, settings

from repro.dfg.transforms import validate_graph
from tests.strategies import dags


@given(dags())
@settings(max_examples=60)
def test_random_dags_have_valid_topological_order(graph):
    order = graph.topological_order()
    assert sorted(order) == sorted(graph.operations)
    position = {op_id: i for i, op_id in enumerate(order)}
    for op_id in order:
        for pred in graph.predecessors(op_id):
            assert position[pred] < position[op_id]


@given(dags())
@settings(max_examples=60)
def test_random_dags_validate(graph):
    problems = validate_graph(graph)
    # The strategy marks every leaf as an output, so only dangling-input
    # problems may remain (an input can legitimately go unused when ops
    # happen to never draw it).
    assert all("never produced nor consumed" in p for p in problems)


@given(dags())
@settings(max_examples=60)
def test_depth_bounded_by_op_count(graph):
    assert 1 <= graph.depth() <= graph.op_count()


@given(dags())
@settings(max_examples=60)
def test_subgraph_of_half_is_consistent(graph):
    ops = sorted(graph.operations)
    half = ops[: max(1, len(ops) // 2)]
    sub = graph.subgraph_ops(half)
    assert sub.op_count() == len(half)
    # Every subgraph input is either a graph input or produced outside.
    for value in sub.primary_inputs():
        original = graph.value(value.id)
        assert original.producer is None or original.producer not in half


@given(dags())
@settings(max_examples=60)
def test_cut_values_cover_cross_partition_edges(graph):
    ops = graph.topological_order()
    half = len(ops) // 2 or 1
    mapping = {
        op_id: ("P1" if i < half else "P2") for i, op_id in enumerate(ops)
    }
    cuts = {vid for vid, _src, _dests in graph.cut_values(mapping)}
    for op_id in ops:
        for vid in graph.operation(op_id).inputs:
            producer = graph.value(vid).producer
            if producer is None:
                continue
            if mapping[producer] != mapping[op_id]:
                assert vid in cuts
