"""The flight recorder: a ring buffer of recently completed work.

Metrics aggregate and traces are per-job; what is missing when a 5xx
pages someone is the *recent history* — what the last N requests and
jobs were, how long they took, which traces to pull.  The flight
recorder keeps exactly that: a bounded, thread-safe ring buffer of
completed request/job summaries (route, status, latency, trace id, the
top spans of a traced job), oldest evicted first.

It is dumpable three ways, all wired in by the service:

* ``GET /debug/recent`` — the newest records as JSON;
* ``SIGUSR2`` — :meth:`dump_to` a timestamped file (a black-box pull
  from a live process without stopping it);
* automatically on any 5xx response — the service snapshots the buffer
  to disk (when a flight directory is configured) so the context around
  the failure survives even if the process dies next.

Records are plain JSON-ready dicts; ``seq`` is a monotonically
increasing sequence number so consumers can detect gaps after eviction.
"""

from __future__ import annotations

import json
import os
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Mapping, Optional, Sequence

#: Spans kept per job record — the slowest few tell the story.
TOP_SPANS = 5

DEFAULT_CAPACITY = 256


def top_spans(
    spans: Sequence[Mapping[str, Any]], limit: int = TOP_SPANS
) -> List[Dict[str, Any]]:
    """The ``limit`` slowest spans of a trace, as compact summaries."""
    ranked = sorted(
        spans,
        key=lambda s: s.get("elapsed_s", 0.0),
        reverse=True,
    )
    return [
        {
            "name": span.get("name"),
            "elapsed_s": round(float(span.get("elapsed_s", 0.0)), 6),
            "status": span.get("status"),
        }
        for span in ranked[:limit]
    ]


class FlightRecorder:
    """A bounded ring of completed request/job summaries."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._lock = threading.Lock()
        self._records: Deque[Dict[str, Any]] = deque(maxlen=capacity)
        self._seq = 0
        self._recorded = 0

    # ------------------------------------------------------------------
    def record(
        self,
        kind: str,
        *,
        route: Optional[str] = None,
        status: Optional[int] = None,
        latency_ms: Optional[float] = None,
        trace_id: Optional[str] = None,
        spans: Optional[Sequence[Mapping[str, Any]]] = None,
        **extra: Any,
    ) -> Dict[str, Any]:
        """Append one completed-work summary; returns the record."""
        record: Dict[str, Any] = {
            "kind": kind,
            "ts": time.time(),
        }
        if route is not None:
            record["route"] = route
        if status is not None:
            record["status"] = int(status)
        if latency_ms is not None:
            record["latency_ms"] = round(float(latency_ms), 3)
        if trace_id is not None:
            record["trace_id"] = trace_id
        if spans:
            record["top_spans"] = top_spans(spans)
        if extra:
            record.update(extra)
        with self._lock:
            self._seq += 1
            self._recorded += 1
            record["seq"] = self._seq
            self._records.append(record)
        return record

    # ------------------------------------------------------------------
    def recent(self, limit: Optional[int] = None) -> List[Dict[str, Any]]:
        """The newest records, newest first (a copy)."""
        with self._lock:
            records = list(self._records)
        records.reverse()
        if limit is not None:
            records = records[: max(0, limit)]
        return records

    def stats(self) -> Dict[str, Any]:
        """Gauges for ``/metrics``."""
        with self._lock:
            resident = len(self._records)
            recorded = self._recorded
        return {
            "capacity": self.capacity,
            "resident": resident,
            "recorded": recorded,
            "evicted": recorded - resident,
        }

    # ------------------------------------------------------------------
    def dump(self) -> Dict[str, Any]:
        """A JSON-ready snapshot of the whole buffer, oldest first."""
        with self._lock:
            records = list(self._records)
            recorded = self._recorded
        return {
            "dumped_at": time.time(),
            "capacity": self.capacity,
            "recorded_total": recorded,
            "records": records,
        }

    def dump_to(self, path: str) -> str:
        """Write :meth:`dump` to ``path`` (parents created); returns it."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.dump(), handle, indent=2, default=str)
            handle.write("\n")
        return path
