"""Structured logging: level filtering, sinks, trace correlation."""

import io
import json

import pytest

from repro.obs.logging import (
    LOG_ENV,
    LOG_FILE_ENV,
    configure_logging,
    get_logger,
    reset_logging,
)
from repro.obs.tracing import Tracer, activate


@pytest.fixture(autouse=True)
def clean_logging(monkeypatch):
    monkeypatch.delenv(LOG_ENV, raising=False)
    monkeypatch.delenv(LOG_FILE_ENV, raising=False)
    reset_logging()
    yield
    reset_logging()


def lines(stream: io.StringIO):
    return [
        json.loads(line)
        for line in stream.getvalue().splitlines()
        if line
    ]


class TestLevels:
    def test_unset_env_means_off(self, capsys):
        get_logger("t").error("should not appear")
        assert capsys.readouterr().err == ""

    def test_level_filtering(self):
        stream = io.StringIO()
        configure_logging(level="warning", stream=stream)
        log = get_logger("t")
        log.debug("no")
        log.info("no")
        log.warning("yes")
        log.error("yes too")
        out = lines(stream)
        assert [r["level"] for r in out] == ["warning", "error"]

    def test_env_level_applies_lazily(self, monkeypatch):
        stream = io.StringIO()
        monkeypatch.setenv(LOG_ENV, "info")
        configure_logging(stream=stream)  # level from env
        log = get_logger("t")
        log.debug("no")
        log.info("yes")
        assert [r["msg"] for r in lines(stream)] == ["yes"]

    def test_unknown_level_raises(self):
        with pytest.raises(ValueError, match="unknown log level"):
            configure_logging(level="loud")

    def test_is_enabled(self):
        configure_logging(level="info", stream=io.StringIO())
        log = get_logger("t")
        assert log.is_enabled("error")
        assert not log.is_enabled("debug")


class TestRecords:
    def test_record_shape_and_fields(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        get_logger("svc").info("drain started", jobs=3)
        (record,) = lines(stream)
        assert record["logger"] == "svc"
        assert record["msg"] == "drain started"
        assert record["jobs"] == 3
        assert isinstance(record["ts"], float)
        assert "trace_id" not in record

    def test_trace_correlation(self):
        stream = io.StringIO()
        configure_logging(level="info", stream=stream)
        tracer = Tracer(trace_id="trace-42")
        with activate(tracer):
            with tracer.span("work"):
                get_logger("svc").info("inside span")
        (record,) = lines(stream)
        assert record["trace_id"] == "trace-42"
        assert record["span_id"]

    def test_file_sink(self, tmp_path):
        path = tmp_path / "log.jsonl"
        configure_logging(level="info", path=str(path))
        get_logger("svc").info("to file")
        reset_logging()  # close the handle
        records = [
            json.loads(line)
            for line in path.read_text().splitlines()
        ]
        assert records[0]["msg"] == "to file"

    def test_env_file_sink(self, tmp_path, monkeypatch):
        path = tmp_path / "env-log.jsonl"
        monkeypatch.setenv(LOG_ENV, "info")
        monkeypatch.setenv(LOG_FILE_ENV, str(path))
        get_logger("svc").info("lazy env config")
        reset_logging()
        assert "lazy env config" in path.read_text()
