"""PLA-based controller area and delay model.

BAD predicts "PLA-based controller area ... as well as the additional
delays introduced to the clock cycle (register, multiplexer, wiring and
PLA delays)" (section 2.4), and CHOP reuses the same PLA model for
data-transfer-module controllers: "the wait and data transfer times are
used to predict the number of inputs, outputs and product terms of a PLA
... from which PLA size and delay are predicted by the same methods used
in BAD" (section 2.5).

The model is the standard two-plane PLA geometry: the AND plane is
``2 * inputs`` columns by ``terms`` rows, the OR plane ``outputs`` columns
by ``terms`` rows, each crosspoint one cell.  Delay grows with the plane
dimensions (long poly lines), modelled affinely.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import PredictionError
from repro.stats import Triplet


@dataclass(frozen=True, slots=True)
class PlaParameters:
    """Technology constants for the PLA model (3-micron defaults)."""

    #: Area of one crosspoint cell in mil^2.
    cell_area_mil2: float = 1.1
    #: Fixed peripheral area (drivers, sense) in mil^2.
    peripheral_area_mil2: float = 300.0
    #: Fixed evaluation delay in ns.
    base_delay_ns: float = 8.0
    #: Delay per input column in ns.
    delay_per_input_ns: float = 0.35
    #: Delay per product-term row in ns.
    delay_per_term_ns: float = 0.08
    #: Relative uncertainty bounds applied to the area estimate.
    area_rel_lb: float = 0.88
    area_rel_ub: float = 1.15


@dataclass(frozen=True, slots=True)
class PlaEstimate:
    """Size and speed of one predicted PLA."""

    inputs: int
    outputs: int
    product_terms: int
    area_mil2: Triplet
    delay_ns: float


def pla_estimate(
    inputs: int,
    outputs: int,
    product_terms: int,
    params: PlaParameters = PlaParameters(),
) -> PlaEstimate:
    """Area/delay of a PLA with the given logical dimensions."""
    if inputs < 0 or outputs <= 0 or product_terms <= 0:
        raise PredictionError(
            f"invalid PLA dimensions: {inputs} inputs, {outputs} outputs, "
            f"{product_terms} terms"
        )
    columns = 2 * inputs + outputs
    core = columns * product_terms * params.cell_area_mil2
    most_likely = core + params.peripheral_area_mil2
    area = Triplet.spread(most_likely, params.area_rel_lb, params.area_rel_ub)
    delay = (
        params.base_delay_ns
        + params.delay_per_input_ns * inputs
        + params.delay_per_term_ns * product_terms
    )
    return PlaEstimate(
        inputs=inputs,
        outputs=outputs,
        product_terms=product_terms,
        area_mil2=area,
        delay_ns=delay,
    )


def datapath_controller(
    latency_cycles: int,
    operator_count: int,
    register_words: int,
    mux_count: int,
    value_width: int,
    params: PlaParameters = PlaParameters(),
) -> PlaEstimate:
    """Controller for one processing unit (partition implementation).

    Inputs: state register (``log2`` of the step count) plus two external
    status/handshake lines.  Outputs: one enable per operator, one load
    per register word, one select line per word-wide mux group.  Product
    terms: one per control step plus decode sharing.
    """
    if latency_cycles <= 0:
        raise PredictionError("controller needs at least one control step")
    state_bits = max(1, math.ceil(math.log2(latency_cycles + 1)))
    inputs = state_bits + 2
    mux_groups = max(0, mux_count // max(1, value_width))
    outputs = max(1, operator_count + register_words + mux_groups)
    terms = latency_cycles + max(1, outputs // 2)
    return pla_estimate(inputs, outputs, terms, params)
