"""The flight recorder: ring-buffer eviction, dumps, top spans."""

import json

import pytest

from repro.obs.flight import TOP_SPANS, FlightRecorder, top_spans


class TestRingBuffer:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            FlightRecorder(capacity=0)

    def test_records_carry_monotonic_seq(self):
        rec = FlightRecorder(capacity=8)
        first = rec.record("request", route="GET /a", status=200)
        second = rec.record("request", route="GET /b", status=200)
        assert second["seq"] == first["seq"] + 1

    def test_eviction_drops_oldest_first(self):
        rec = FlightRecorder(capacity=3)
        for i in range(5):
            rec.record("request", route=f"GET /{i}", status=200)
        routes = [r["route"] for r in rec.recent()]
        # newest first, and the two oldest records (0, 1) are gone
        assert routes == ["GET /4", "GET /3", "GET /2"]
        stats = rec.stats()
        assert stats == {
            "capacity": 3, "resident": 3, "recorded": 5, "evicted": 2,
        }

    def test_recent_limit(self):
        rec = FlightRecorder(capacity=8)
        for i in range(4):
            rec.record("request", route=f"GET /{i}", status=200)
        assert len(rec.recent(limit=2)) == 2
        assert rec.recent(limit=2)[0]["route"] == "GET /3"

    def test_record_fields(self):
        rec = FlightRecorder()
        r = rec.record(
            "request",
            route="POST /projects",
            status=503,
            latency_ms=12.3456,
            trace_id="t-1",
            job_id="j-1",
        )
        assert r["kind"] == "request"
        assert r["status"] == 503
        assert r["latency_ms"] == 12.346
        assert r["trace_id"] == "t-1"
        assert r["job_id"] == "j-1"


class TestTopSpans:
    def test_top_spans_ranked_and_truncated(self):
        spans = [
            {"name": f"s{i}", "elapsed_s": float(i), "status": "ok"}
            for i in range(10)
        ]
        top = top_spans(spans)
        assert len(top) == TOP_SPANS
        assert [s["name"] for s in top] == ["s9", "s8", "s7", "s6", "s5"]

    def test_job_record_keeps_only_top_spans(self):
        rec = FlightRecorder()
        spans = [
            {"name": f"s{i}", "elapsed_s": float(i)} for i in range(20)
        ]
        r = rec.record("job", spans=spans, trace_id="t")
        assert len(r["top_spans"]) == TOP_SPANS
        assert r["top_spans"][0]["name"] == "s19"


class TestDump:
    def test_dump_is_oldest_first_and_complete(self):
        rec = FlightRecorder(capacity=4)
        for i in range(6):
            rec.record("request", route=f"GET /{i}", status=200)
        doc = rec.dump()
        assert doc["capacity"] == 4
        assert doc["recorded_total"] == 6
        assert [r["route"] for r in doc["records"]] == [
            "GET /2", "GET /3", "GET /4", "GET /5",
        ]

    def test_dump_to_writes_json(self, tmp_path):
        rec = FlightRecorder()
        rec.record("request", route="GET /x", status=200)
        path = str(tmp_path / "sub" / "flight.json")
        written = rec.dump_to(path)
        assert written == path
        with open(path, encoding="utf-8") as handle:
            doc = json.load(handle)
        assert doc["records"][0]["route"] == "GET /x"
