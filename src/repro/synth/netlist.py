"""Netlist construction and exact pricing.

Given a bound design, :func:`build_netlist` materialises the structure a
synthesis tool would emit: unit instances with their library components,
registers, the steering multiplexers implied by the binding (distinct
sources per unit port, distinct writers per register), and the FSM's
control words.  Everything except routing is then priced *exactly* from
the library — routing stays a model (pre-layout, as in any synthesis
flow), using the same standard-cell fit the predictor uses so the
comparison isolates the predictor's allocation estimates.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Set, Tuple

from repro.bad.controller import PlaEstimate, PlaParameters, pla_estimate
from repro.bad.scheduling import Schedule
from repro.bad.wiring import WiringParameters, wiring_estimate
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType
from repro.errors import PredictionError
from repro.library.library import ComponentLibrary, ModuleSet
from repro.synth.binding import BoundDesign
from repro.units import ceil_div


@dataclass(frozen=True, slots=True)
class Netlist:
    """One synthesized partition, exactly priced."""

    unit_instances: Mapping[str, int]
    register_count: int
    register_bits: int
    mux_count: int
    fsm: PlaEstimate
    functional_area_mil2: float
    register_area_mil2: float
    mux_area_mil2: float
    controller_area_mil2: float
    wiring_area_mil2: float
    control_words: int

    @property
    def area_mil2(self) -> float:
        """Total structural area (wiring included)."""
        return (
            self.functional_area_mil2
            + self.register_area_mil2
            + self.mux_area_mil2
            + self.controller_area_mil2
            + self.wiring_area_mil2
        )


def build_netlist(
    graph: DataFlowGraph,
    schedule: Schedule,
    bound: BoundDesign,
    module_set: ModuleSet,
    library: ComponentLibrary,
    value_width: int,
    pla_params: PlaParameters = PlaParameters(),
    wiring_params: WiringParameters = WiringParameters(),
) -> Netlist:
    """Materialise and price the bound design."""
    functional = 0.0
    for cls, used in bound.units_used.items():
        if cls.startswith("mem:"):
            continue  # memory ports live in the memory block
        component = module_set.component(OpType(cls))
        functional += used * component.area_for_width(value_width)

    register_bits = bound.register_count * value_width
    register_area = library.register.area_for_bits(register_bits)

    mux_count = _exact_mux_count(graph, schedule, bound, value_width)
    mux_area = library.mux.area_for_bits(mux_count)

    control_words = _control_word_count(schedule)
    fsm = _build_fsm(
        schedule, bound, mux_count, value_width, control_words,
        pla_params,
    )

    active = functional + register_area + mux_area + fsm.area_mil2.ml
    cells = (
        sum(bound.units_used.values())
        + bound.register_count
        + ceil_div(mux_count, max(1, value_width))
        + 1
    )
    wiring = wiring_estimate(active, cells, wiring_params)

    return Netlist(
        unit_instances=dict(bound.units_used),
        register_count=bound.register_count,
        register_bits=register_bits,
        mux_count=mux_count,
        fsm=fsm,
        functional_area_mil2=functional,
        register_area_mil2=register_area,
        mux_area_mil2=mux_area,
        controller_area_mil2=fsm.area_mil2.ml,
        wiring_area_mil2=wiring.area_mil2.ml,
        control_words=control_words,
    )


# ----------------------------------------------------------------------
# structural details
# ----------------------------------------------------------------------
def _source_of(
    graph: DataFlowGraph,
    schedule: Schedule,
    bound: BoundDesign,
    value_id: str,
    consumer: str,
) -> Tuple[str, object]:
    """What physically drives ``value_id`` at ``consumer``'s read time.

    Chained values come combinationally from the producing unit; stored
    values come from their register; partition inputs come from the
    input port (transfer-module bus).
    """
    value = graph.value(value_id)
    if value.producer is None:
        return ("input", value_id)
    if value_id in bound.register_of and not schedule.chained(
        value.producer, consumer
    ):
        return ("register", bound.register_of[value_id])
    return ("unit", bound.unit_of[value.producer])


def _exact_mux_count(
    graph: DataFlowGraph,
    schedule: Schedule,
    bound: BoundDesign,
    value_width: int,
) -> int:
    """2:1 mux cells from the actual sharing the binding created."""
    muxes = 0
    # Unit input ports: one selector tree per port over its distinct
    # sources.
    port_sources: Dict[Tuple[str, int, int], Set] = {}
    for op_id, (cls, index) in bound.unit_of.items():
        op = graph.operation(op_id)
        for port, value_id in enumerate(op.inputs):
            key = (cls, index, port)
            port_sources.setdefault(key, set()).add(
                _source_of(graph, schedule, bound, value_id, op_id)
            )
    for sources in port_sources.values():
        muxes += max(0, len(sources) - 1) * value_width

    # Register write ports: one selector tree over distinct writers.
    writers: Dict[int, Set] = {}
    for value_id, register in bound.register_of.items():
        producer = graph.value(value_id).producer
        if producer is None:
            source = ("input", value_id)
        else:
            source = ("unit", bound.unit_of[producer])
        writers.setdefault(register, set()).add(source)
    for sources in writers.values():
        muxes += max(0, len(sources) - 1) * value_width
    return muxes


def _control_word_count(schedule: Schedule) -> int:
    """Distinct control states: one per cycle with activity."""
    active_cycles = set()
    for op_id, begin in schedule.start.items():
        for cycle in range(begin, begin + schedule.duration[op_id]):
            active_cycles.add(cycle)
    return max(1, len(active_cycles))


def _build_fsm(
    schedule: Schedule,
    bound: BoundDesign,
    mux_count: int,
    value_width: int,
    control_words: int,
    pla_params: PlaParameters,
) -> PlaEstimate:
    """The controller PLA sized from the real control requirements."""
    state_bits = max(1, math.ceil(math.log2(schedule.latency + 1)))
    inputs = state_bits + 2  # status/handshake, as in the predictor
    outputs = max(
        1,
        sum(bound.units_used.values())
        + bound.register_count
        + ceil_div(mux_count, max(1, value_width)),
    )
    terms = control_words + max(1, outputs // 2)
    return pla_estimate(inputs, outputs, terms, pla_params)
