"""System-level advising: automated sweeps over designer decisions.

The paper positions CHOP "as a system-level advisor" (section 4) and
names two loops it intends to automate: interleaved memory/behavior
partitioning (section 2.2) and the partitioning-scheme choice itself.
This module closes both loops with exhaustive-over-small-spaces sweeps
driven by the ordinary check path:

* :func:`advise_partition_count` — try horizontal cuts of 1..max
  partitions over a chip-set template and rank the feasible outcomes;
* :func:`advise_memory_assignment` — try every assignment of the
  on-chip memory blocks to chips and rank the feasible outcomes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.core.chop import ChopSession
from repro.errors import ChopError, PartitioningError
from repro.search.results import SearchResult

#: Assignment sweeps are exhaustive; bound the product.
MAX_ASSIGNMENTS = 4096


@dataclass(frozen=True, slots=True)
class Advice:
    """One ranked option from an advising sweep."""

    label: str
    feasible: bool
    ii_main: Optional[int]
    delay_main: Optional[int]
    trials: int

    def sort_key(self) -> Tuple[int, int, int]:
        if not self.feasible:
            return (1, 0, 0)
        assert self.ii_main is not None and self.delay_main is not None
        return (0, self.ii_main, self.delay_main)


def _advice_from(label: str, result: Optional[SearchResult]) -> Advice:
    if result is None or not result.feasible:
        trials = result.trials if result is not None else 0
        return Advice(
            label=label, feasible=False, ii_main=None, delay_main=None,
            trials=trials,
        )
    best = result.best()
    assert best is not None
    return Advice(
        label=label,
        feasible=True,
        ii_main=best.ii_main,
        delay_main=best.delay_main,
        trials=result.trials,
    )


def advise_partition_count(
    session_factory: Callable[[int], ChopSession],
    max_partitions: int,
    heuristic: str = "iterative",
) -> List[Advice]:
    """Rank partition counts 1..max by best feasible (II, delay).

    ``session_factory`` builds a fresh, fully-assigned session for a
    given partition count (e.g. a wrapper around
    :func:`repro.experiments.experiment_session`); counts whose sessions
    cannot be built or checked rank as infeasible.
    """
    if max_partitions < 1:
        raise PartitioningError(
            f"max partition count must be >= 1, got {max_partitions}"
        )
    advice: List[Advice] = []
    for count in range(1, max_partitions + 1):
        label = f"{count} partition{'s' if count > 1 else ''}"
        try:
            session = session_factory(count)
            result = session.check(heuristic=heuristic)
        except ChopError:
            advice.append(_advice_from(label, None))
            continue
        advice.append(_advice_from(label, result))
    return sorted(advice, key=Advice.sort_key)


def advise_memory_assignment(
    session: ChopSession,
    heuristic: str = "iterative",
) -> List[Advice]:
    """Rank every assignment of on-chip memory blocks to chips.

    Automates the "interleaving memory and behavioral partitioning"
    step of section 2.2: the behavioral partitioning stays fixed while
    memory placement sweeps.  Off-the-shelf blocks are not assigned and
    stay out of the sweep.
    """
    blocks = sorted(
        name
        for name, module in session.memories.items()
        if not module.off_the_shelf
    )
    chips = sorted(session.chips)
    if not chips:
        raise PartitioningError("session has no chips")
    if not blocks:
        raise PartitioningError(
            "session has no assignable (on-chip) memory blocks"
        )
    combination_count = len(chips) ** len(blocks)
    if combination_count > MAX_ASSIGNMENTS:
        raise PartitioningError(
            f"{combination_count} assignments exceed the sweep cap of "
            f"{MAX_ASSIGNMENTS}"
        )

    original = dict(session.memory_chip)
    advice: List[Advice] = []
    try:
        for combo in itertools.product(chips, repeat=len(blocks)):
            label = ", ".join(
                f"{block}->{chip}" for block, chip in zip(blocks, combo)
            )
            for block, chip in zip(blocks, combo):
                session.assign_memory(block, chip)
            try:
                result = session.check(heuristic=heuristic)
            except ChopError:
                advice.append(_advice_from(label, None))
                continue
            advice.append(_advice_from(label, result))
    finally:
        session.memory_chip.clear()
        session.memory_chip.update(original)
    return sorted(advice, key=Advice.sort_key)
