"""Tests for the canonical experiment session builders."""

from __future__ import annotations

import pytest

from repro.bad.styles import OperationTiming
from repro.errors import PartitioningError
from repro.experiments import (
    EXPERIMENT1_CRITERIA,
    EXPERIMENT2_CRITERIA,
    experiment1_clocks,
    experiment1_session,
    experiment2_clocks,
    experiment2_session,
)


class TestConstants:
    def test_paper_constraints(self):
        assert EXPERIMENT1_CRITERIA.performance_ns == 30_000.0
        assert EXPERIMENT1_CRITERIA.delay_ns == 30_000.0
        assert EXPERIMENT2_CRITERIA.performance_ns == 20_000.0

    def test_paper_confidences(self):
        # "100% of satisfying the performance ... and chip area
        # constraints, and ... 80% of satisfying the system delay".
        for criteria in (EXPERIMENT1_CRITERIA, EXPERIMENT2_CRITERIA):
            assert criteria.performance_confidence == 1.0
            assert criteria.area_confidence == 1.0
            assert criteria.delay_confidence == 0.8

    def test_clock_schemes(self):
        clocks1 = experiment1_clocks()
        assert clocks1.main_cycle_ns == 300.0
        assert clocks1.dp_cycle_ns == 3_000.0
        assert clocks1.transfer_cycle_ns == 300.0
        clocks2 = experiment2_clocks()
        assert clocks2.dp_cycle_ns == 300.0


class TestSessionBuilders:
    @pytest.mark.parametrize("count", [1, 2, 3])
    def test_experiment1_structure(self, count):
        session = experiment1_session(2, count)
        partitioning = session.partitioning()
        assert len(partitioning.partitions) == count
        assert len(partitioning.chips) == count
        # Each partition on its own chip, per the paper's protocol.
        chips_used = {
            partitioning.chip_of(name)
            for name in partitioning.partitions
        }
        assert len(chips_used) == count
        assert session.style.timing is OperationTiming.SINGLE_CYCLE

    def test_experiment2_structure(self):
        session = experiment2_session(2)
        assert session.style.timing is OperationTiming.MULTI_CYCLE
        assert session.clocks.dp_multiplier == 1

    def test_package_selection(self):
        session = experiment1_session(package_number=1,
                                      partition_count=1)
        chip = next(iter(session.chips.values()))
        assert chip.package.pin_count == 64

    def test_custom_graph(self, fir_graph):
        session = experiment1_session(2, 2, graph=fir_graph)
        assert session.graph is fir_graph

    def test_rejects_bad_count(self):
        with pytest.raises(PartitioningError):
            experiment1_session(2, 0)

    def test_library_is_table1(self):
        session = experiment1_session(2, 1)
        assert len(session.library) == 6
        assert session.library.component_named("mul3").delay_ns == 7370.0
