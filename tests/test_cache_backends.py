"""The pluggable prediction-cache backends (``repro.cache``).

Covers the factory/auto resolution, the shared multi-writer backend's
collision and attribution semantics, back-compat of the historical
``repro.engine.diskcache`` import path, and — the distributed-tier
correctness core — a multi-process stress test: N processes hammering
the same fingerprint namespace must produce no torn reads, no lost
quarantines, and loads byte-identical to a serial write.
"""

from __future__ import annotations

import multiprocessing

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cache import (
    CACHE_VERSION,
    CacheBackend,
    DiskPredictionCache,
    SharedPredictionCache,
    create_backend,
    resolve_backend_kind,
)
from repro.experiments import experiment1_session


KEY = "a" * 64


@pytest.fixture()
def predictions():
    return experiment1_session(partition_count=2).export_predictions()


# ----------------------------------------------------------------------
# factory and protocol
# ----------------------------------------------------------------------
class TestFactory:
    def test_kinds_resolve(self):
        assert resolve_backend_kind("disk") == "disk"
        assert resolve_backend_kind("shared") == "shared"
        assert resolve_backend_kind("auto", writers=1) == "disk"
        assert resolve_backend_kind("auto", writers=4) == "shared"

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown cache backend"):
            create_backend("redis", tmp_path)

    def test_create_backend_builds_the_right_class(self, tmp_path):
        assert isinstance(
            create_backend("disk", tmp_path), DiskPredictionCache
        )
        assert isinstance(
            create_backend("shared", tmp_path), SharedPredictionCache
        )
        auto = create_backend("auto", tmp_path, writers=3)
        assert isinstance(auto, SharedPredictionCache)

    def test_both_backends_satisfy_the_protocol(self, tmp_path):
        for kind in ("disk", "shared"):
            assert isinstance(
                create_backend(kind, tmp_path), CacheBackend
            )

    def test_engine_import_path_still_works(self):
        from repro.engine import diskcache

        assert diskcache.DiskPredictionCache is DiskPredictionCache
        assert diskcache.CACHE_VERSION == CACHE_VERSION
        from repro.engine import DiskPredictionCache as reexported

        assert reexported is DiskPredictionCache


# ----------------------------------------------------------------------
# shared backend semantics
# ----------------------------------------------------------------------
class TestSharedBackend:
    def test_round_trip_and_stats_shape(self, tmp_path, predictions):
        cache = SharedPredictionCache(tmp_path, writer_id="me:1")
        cache.store(KEY, predictions)
        loaded = cache.load(KEY)
        assert loaded == {
            k: list(v) for k, v in sorted(predictions.items())
        }
        stats = cache.stats()
        assert stats["backend"] == "shared"
        assert stats["writer_id"] == "me:1"
        assert stats["hits_local"] == 1
        assert stats["hits_remote"] == 0

    def test_remote_hit_attribution(self, tmp_path, predictions):
        writer = SharedPredictionCache(tmp_path, writer_id="host:1")
        reader = SharedPredictionCache(tmp_path, writer_id="host:2")
        writer.store(KEY, predictions)
        assert reader.load(KEY) is not None
        assert reader.stats()["hits_remote"] == 1
        assert reader.stats()["hits_local"] == 0

    def test_identical_collision_discarded(self, tmp_path, predictions):
        first = SharedPredictionCache(tmp_path, writer_id="host:1")
        second = SharedPredictionCache(tmp_path, writer_id="host:2")
        first.store(KEY, predictions)
        second.store(KEY, predictions)
        assert second.stats()["collisions_discarded"] == 1
        assert second.stats()["collisions_replaced"] == 0
        # The surviving entry is still the first writer's.
        assert second.load(KEY) is not None
        assert second.stats()["hits_remote"] == 1

    def test_differing_collision_replaced(self, tmp_path, predictions):
        first = SharedPredictionCache(tmp_path, writer_id="host:1")
        second = SharedPredictionCache(tmp_path, writer_id="host:2")
        first.store(KEY, predictions)
        smaller = {name: preds[:1] for name, preds in predictions.items()}
        second.store(KEY, smaller)
        assert second.stats()["collisions_replaced"] == 1
        loaded = second.load(KEY)
        assert loaded is not None
        assert all(len(preds) == 1 for preds in loaded.values())

    def test_disk_backend_entry_upgrades_cleanly(
        self, tmp_path, predictions
    ):
        # A directory previously owned by the single-writer backend:
        # digestless, writerless entries must read as remote hits and
        # an identical shared write must still be discarded.
        DiskPredictionCache(tmp_path).store(KEY, predictions)
        shared = SharedPredictionCache(tmp_path, writer_id="host:9")
        assert shared.load(KEY) is not None
        assert shared.stats()["hits_remote"] == 1
        shared.store(KEY, predictions)
        assert shared.stats()["collisions_discarded"] == 1

    def test_quarantine_preserved_under_shared(self, tmp_path):
        cache = SharedPredictionCache(tmp_path)
        path = cache.path_for(KEY)
        path.write_bytes(b"not a pickle")
        assert cache.load(KEY) is None
        assert cache.stats()["quarantined"] == 1
        assert path.with_name(path.name + ".corrupt").exists()
        assert not path.exists()

    def test_keys_match_disk_backend(self, tmp_path):
        session = experiment1_session(partition_count=2)
        disk = DiskPredictionCache(tmp_path / "a")
        shared = SharedPredictionCache(tmp_path / "b")
        assert disk.key_for(
            "fp", session.library, session.clocks
        ) == shared.key_for("fp", session.library, session.clocks)


# ----------------------------------------------------------------------
# multi-process stress: concurrent writers on one namespace
# ----------------------------------------------------------------------
def _hammer(directory, key, payload_sizes, results):
    """One writer process: interleave stores and loads on ``key``."""
    from repro.cache import SharedPredictionCache
    from repro.experiments import experiment1_session

    predictions = experiment1_session(
        partition_count=2
    ).export_predictions()
    cache = SharedPredictionCache(directory)
    outcome = {"bad_loads": 0, "loads": 0, "stores": 0}
    try:
        for size in payload_sizes:
            trimmed = {
                name: preds[: max(1, size)]
                for name, preds in predictions.items()
            }
            cache.store(key, trimmed)
            outcome["stores"] += 1
            loaded = cache.load(key)
            outcome["loads"] += 1
            if loaded is not None:
                # Any successfully loaded entry must be one of the
                # well-formed documents some writer produced — i.e.
                # every partition trimmed to the same length.
                lengths = {len(preds) for preds in loaded.values()}
                if len(lengths) != 1:
                    outcome["bad_loads"] += 1
        outcome["quarantined"] = cache.stats()["quarantined"]
    except Exception as exc:  # pragma: no cover - failure diagnostics
        outcome["error"] = f"{type(exc).__name__}: {exc}"
    results.put(outcome)


class TestMultiProcessStress:
    def test_concurrent_writers_never_tear(self, tmp_path):
        """N processes × M interleaved store/load on one key.

        No load may observe a torn or mixed entry (the atomic-rename +
        validation contract), nothing may quarantine (no writer ever
        produces a corrupt entry), and the final entry must be
        byte-identical to a serial write of the same document.
        """
        ctx = multiprocessing.get_context("spawn")
        results = ctx.Queue()
        sizes = [1, 2, 1, 2, 1]
        procs = [
            ctx.Process(
                target=_hammer,
                args=(str(tmp_path), KEY, sizes, results),
            )
            for _ in range(4)
        ]
        for proc in procs:
            proc.start()
        outcomes = [results.get(timeout=120) for _ in procs]
        for proc in procs:
            proc.join(timeout=120)
            assert proc.exitcode == 0
        for outcome in outcomes:
            assert "error" not in outcome, outcome
            assert outcome["bad_loads"] == 0, outcome
            assert outcome["quarantined"] == 0, outcome
            assert outcome["loads"] == len(sizes)

        # Byte-identity vs a serial write: the survivor is whichever
        # size won the last race; rewrite it serially and compare the
        # backend's own content digests (sha256 of the pickled sorted
        # prediction lists — the same bytes the collision logic keys
        # on), plus structural equality of the loaded documents.
        survivor = SharedPredictionCache(tmp_path)
        final = survivor.load(KEY)
        assert final is not None
        serial_dir = tmp_path / "serial"
        serial = SharedPredictionCache(serial_dir)
        serial.store(KEY, final)
        replayed = serial.load(KEY)
        assert replayed == final
        assert SharedPredictionCache._digest(
            replayed
        ) == SharedPredictionCache._digest(final)

    def test_lost_quarantine_impossible(self, tmp_path):
        """Two caches tripping over one corrupt entry quarantine once.

        ``os.replace`` to the quarantine name is atomic: exactly one
        reader wins the rename, the other sees a clean miss — the
        corrupt bytes always survive in the ``.corrupt`` file.
        """
        a = SharedPredictionCache(tmp_path)
        b = SharedPredictionCache(tmp_path)
        path = a.path_for(KEY)
        path.write_bytes(b"\x80garbage")
        assert a.load(KEY) is None
        assert b.load(KEY) is None
        quarantine = path.with_name(path.name + ".corrupt")
        assert quarantine.read_bytes() == b"\x80garbage"
        # One quarantine actually happened; the second reader missed
        # on FileNotFoundError without double-counting.
        assert a.stats()["quarantined"] + b.stats()["quarantined"] == 1


# ----------------------------------------------------------------------
# property: any op interleaving keeps every load well-formed
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=2),  # writer index
            st.sampled_from(["store1", "store2", "load", "corrupt"]),
        ),
        min_size=1,
        max_size=24,
    )
)
def test_shared_cache_op_sequences_stay_consistent(tmp_path_factory, ops):
    """Sequential interleavings of writers on one directory.

    Drives three writer instances (as the scheduler of a real fleet
    would) through an arbitrary op sequence; every load must be either
    a miss or a well-formed document equal to the latest surviving
    store, and corruption must always land in quarantine.
    """
    tmp_path = tmp_path_factory.mktemp("shared-ops")
    predictions = experiment1_session(
        partition_count=2
    ).export_predictions()
    doc1 = {k: list(v)[:1] for k, v in sorted(predictions.items())}
    doc2 = {k: list(v)[:2] for k, v in sorted(predictions.items())}
    writers = [
        SharedPredictionCache(tmp_path, writer_id=f"w:{i}")
        for i in range(3)
    ]
    last_stored = None
    for index, op in ops:
        cache = writers[index]
        if op == "store1":
            cache.store(KEY, doc1)
            last_stored = doc1
        elif op == "store2":
            cache.store(KEY, doc2)
            last_stored = doc2
        elif op == "corrupt":
            cache.path_for(KEY).write_bytes(b"junk")
            last_stored = None
        else:
            loaded = cache.load(KEY)
            if last_stored is None:
                assert loaded is None
            else:
                assert loaded == last_stored
    total_quarantined = sum(
        c.stats()["quarantined"] for c in writers
    )
    corrupted_then_read = 0
    pending = False
    for _, op in ops:
        if op == "corrupt":
            pending = True
        elif op == "load" and pending:
            corrupted_then_read += 1
            pending = False
        elif op in ("store1", "store2"):
            pending = False
    assert total_quarantined >= corrupted_then_read
