"""Memory module descriptions."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ChipError


@dataclass(frozen=True, slots=True)
class MemoryModule:
    """One memory block of the design's (pre-designed) memory hierarchy.

    The paper assumes the memory hierarchy is designed prior to
    partitioning (section 2.2).  A block is either implemented on one of
    the design's chips (consuming its area) or is an off-the-shelf memory
    chip (consuming no design area, only pins on the chips that access
    it).  ``ports`` bounds how many accesses the block serves per transfer
    cycle; ``access_time_ns`` contributes to the transfer clock's
    feasibility.
    """

    name: str
    words: int
    width_bits: int
    ports: int = 1
    access_time_ns: float = 100.0
    #: Area per bit when the block is implemented on a design chip; the
    #: default is a 3-micron static RAM cell in the style of Table 1's
    #: register cell but denser (shared decode).
    area_per_bit_mil2: float = 4.0
    off_the_shelf: bool = False

    def __post_init__(self) -> None:
        if self.words <= 0 or self.width_bits <= 0:
            raise ChipError(
                f"memory {self.name!r}: words and width must be positive"
            )
        if self.ports <= 0:
            raise ChipError(f"memory {self.name!r}: needs at least one port")
        if self.access_time_ns <= 0:
            raise ChipError(
                f"memory {self.name!r}: access time must be positive"
            )
        if self.area_per_bit_mil2 < 0:
            raise ChipError(
                f"memory {self.name!r}: area per bit must be non-negative"
            )

    @property
    def capacity_bits(self) -> int:
        return self.words * self.width_bits

    @property
    def address_bits(self) -> int:
        """Address width needed to span the block."""
        return max(1, math.ceil(math.log2(self.words))) if self.words > 1 else 1

    def on_chip_area_mil2(self) -> float:
        """Die area when the block lives on a design chip."""
        if self.off_the_shelf:
            return 0.0
        return self.capacity_bits * self.area_per_bit_mil2

    #: Pins needed on a chip to talk to this block when it is NOT on that
    #: chip: data + address (Select and R/W are counted separately as
    #: dedicated pins by the pin budget).
    def interface_pins(self) -> int:
        return self.width_bits + self.address_bits

    def bandwidth_bits_per_cycle(self) -> int:
        """Peak bits this block moves per transfer cycle."""
        return self.ports * self.width_bits
