"""Memory blocks and memory-mapped I/O in a partitioning.

The AR filter of the paper's experiments "does not have any memory or
I/O operations and unfortunately ... does not demonstrate all features
of the partitioner" (section 3).  This example exercises those features:
a windowed filter kernel that reads samples from one memory block and
writes results to another (I/O modelled as memory-mapped I/O, section
2.4), partitioned over two chips.  It compares memory-block assignments
— the "memory blocks" designer modification of section 2.7 — showing how
off-chip memory traffic consumes pins and changes feasibility.

Run:  python examples/memory_partitioning.py
"""

from __future__ import annotations

from repro import (
    ArchitectureStyle,
    ChopSession,
    ClockScheme,
    FeasibilityCriteria,
    GraphBuilder,
    MemoryModule,
    OperationTiming,
    Partition,
    extended_library,
    mosis_package,
)
from repro.core.tasks import build_task_graph


def windowed_filter():
    """Read 4 samples from M_IN, compute a weighted sum per output, and
    write 2 results to M_OUT."""
    b = GraphBuilder("windowed-filter", default_width=16)
    addresses = [b.input(f"addr{i}") for i in range(4)]
    weights = [b.input(f"w{i}") for i in range(4)]
    samples = [b.mem_read(addresses[i], "M_IN") for i in range(4)]

    products = [b.mul(samples[i], weights[i]) for i in range(4)]
    even = b.add(products[0], products[2], name="even")
    odd = b.add(products[1], products[3], name="odd")
    total = b.add(even, odd, name="total")
    diff = b.sub(even, odd, name="diff")
    b.mem_write(total, "M_OUT")
    b.mem_write(diff, "M_OUT")
    b.output(total)
    b.output(diff)
    return b.build()


def build_session(memory_on: str) -> ChopSession:
    graph = windowed_filter()
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0, dp_multiplier=1, transfer_multiplier=1),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=60_000.0, delay_ns=90_000.0
        ),
        memories=[
            MemoryModule("M_IN", words=64, width_bits=16,
                         access_time_ns=250.0),
            MemoryModule("M_OUT", words=64, width_bits=16,
                         access_time_ns=250.0),
        ],
    )
    session.add_chip("chip1", mosis_package(2))
    session.add_chip("chip2", mosis_package(2))

    # Front half (reads + multiplies) on chip1, back half on chip2.
    reads_and_muls = [
        op.id for op in session.graph
        if op.op_type.value in ("mem_read", "mul")
    ]
    rest = [
        op.id for op in session.graph
        if op.id not in set(reads_and_muls)
    ]
    session.assign_memory("M_IN", memory_on)
    session.assign_memory("M_OUT", "chip2")
    session.set_partitions(
        [Partition.of("P1", reads_and_muls), Partition.of("P2", rest)],
        {"P1": "chip1", "P2": "chip2"},
    )
    return session


def main() -> None:
    print("Windowed filter with memory-mapped I/O on two chips.")
    print()
    for memory_on in ("chip1", "chip2"):
        session = build_session(memory_on)
        task_graph = build_task_graph(session.partitioning())
        result = session.check("iterative")
        best = result.best()
        print(
            f"M_IN on {memory_on}: memory pin load "
            f"{task_graph.memory_pin_loads}"
        )
        if best is None:
            print("  -> no feasible implementation")
        else:
            print(
                f"  -> best II {best.ii_main}, delay {best.delay_main}, "
                f"clock {best.clock_cycle_ns:.0f} ns "
                f"({result.feasible_trials} feasible of "
                f"{result.trials} trials)"
            )
        print()
    print(
        "Placing M_IN next to its reader (chip1) frees the interface "
        "pins that the cross-chip assignment burns on memory traffic — "
        "the interleaved memory/behavior partitioning loop the paper "
        "describes in sections 2.7 and 5."
    )


if __name__ == "__main__":
    main()
