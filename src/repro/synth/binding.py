"""Operation-to-unit and value-to-register binding.

Implements the two classic binding steps behavioral synthesis performs
after scheduling:

* **unit binding** — each operation is assigned to a concrete unit
  instance of its resource class, scanning cycles in order and reusing
  the lowest-numbered free instance (chained operations in the same
  cycle occupy distinct instances, exactly as the scheduler accounted);
* **register binding** — the left-edge algorithm packs value lifetimes
  into the minimum number of registers.

Binding is exact for nonpipelined designs; pipelined designs overlap
iterations and need modulo binding, which the validation scope excludes
(the predictor's own modulo lifetime accounting covers them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.bad.allocation import value_lifetimes
from repro.bad.scheduling import Schedule
from repro.dfg.graph import DataFlowGraph
from repro.errors import PredictionError


@dataclass(frozen=True, slots=True)
class BoundDesign:
    """The result of binding one scheduled partition."""

    #: Operation id -> (resource class, unit index).
    unit_of: Mapping[str, Tuple[str, int]]
    #: Units actually instantiated per class.
    units_used: Mapping[str, int]
    #: Value id -> register index (values with no storage are absent).
    register_of: Mapping[str, int]
    #: Registers actually instantiated.
    register_count: int

    def operations_on(self, cls: str, index: int) -> List[str]:
        return sorted(
            op_id
            for op_id, (c, i) in self.unit_of.items()
            if c == cls and i == index
        )

    def values_in(self, register: int) -> List[str]:
        return sorted(
            value_id
            for value_id, r in self.register_of.items()
            if r == register
        )


def bind_design(
    graph: DataFlowGraph,
    schedule: Schedule,
) -> BoundDesign:
    """Bind a scheduled partition's operations and values.

    Raises :class:`PredictionError` when the schedule's capacities are
    insufficient — which would indicate a scheduler bug, since the
    schedule was verified against the same capacities.
    """
    unit_of = _bind_units(graph, schedule)
    units_used: Dict[str, int] = {}
    for cls, index in unit_of.values():
        units_used[cls] = max(units_used.get(cls, 0), index + 1)
    register_of, register_count = _bind_registers(graph, schedule)
    return BoundDesign(
        unit_of=unit_of,
        units_used=units_used,
        register_of=register_of,
        register_count=register_count,
    )


def _bind_units(
    graph: DataFlowGraph, schedule: Schedule
) -> Dict[str, Tuple[str, int]]:
    """Greedy cycle-order unit binding."""
    # busy_until[cls][index] = first free cycle of that instance.
    busy_until: Dict[str, List[int]] = {
        cls: [0] * capacity
        for cls, capacity in schedule.capacities.items()
    }
    unit_of: Dict[str, Tuple[str, int]] = {}
    by_start = sorted(
        schedule.start, key=lambda o: (schedule.start[o], o)
    )
    for op_id in by_start:
        cls = schedule.resource_class[op_id]
        begin = schedule.start[op_id]
        finish = begin + schedule.duration[op_id]
        instances = busy_until[cls]
        for index, free_at in enumerate(instances):
            if free_at <= begin:
                instances[index] = finish
                unit_of[op_id] = (cls, index)
                break
        else:
            raise PredictionError(
                f"no free {cls!r} instance for {op_id!r} at cycle "
                f"{begin}; the schedule violates its capacities"
            )
    return unit_of


def _bind_registers(
    graph: DataFlowGraph, schedule: Schedule
) -> Tuple[Dict[str, int], int]:
    """Left-edge register binding over value lifetimes."""
    lifetimes = value_lifetimes(graph, schedule)
    ordered = sorted(
        lifetimes.items(), key=lambda kv: (kv[1][0], kv[1][1], kv[0])
    )
    register_free_at: List[int] = []
    register_of: Dict[str, int] = {}
    for value_id, (birth, death) in ordered:
        for index, free_at in enumerate(register_free_at):
            if free_at <= birth:
                register_free_at[index] = death
                register_of[value_id] = index
                break
        else:
            register_of[value_id] = len(register_free_at)
            register_free_at.append(death)
    return register_of, len(register_free_at)
