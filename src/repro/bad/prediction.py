"""Predicted design records.

A :class:`DesignPrediction` is one point BAD returns for a partition:
"completely specified characteristics (area, performance, delay) and
memory bandwidth requirements for each memory block" (section 2.4), plus
the design decisions behind it (style, stages, module set, operator,
register and multiplexer allocation) that the tool outputs as synthesis
guidelines (section 3.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Tuple

from repro.bad.controller import PlaEstimate
from repro.bad.styles import OperationTiming
from repro.library.library import ModuleSet
from repro.stats import Triplet


@dataclass(frozen=True, slots=True)
class AreaBreakdown:
    """Chip area consumed by one predicted design, by contributor.

    The paper notes "the areas of chips are consumed by not only
    functional units but also by registers, steering logic, controllers
    and wiring" (section 1.1) — exactly these five triplets.
    """

    functional_units: Triplet
    registers: Triplet
    multiplexers: Triplet
    controller: Triplet
    wiring: Triplet

    @property
    def total(self) -> Triplet:
        return Triplet.sum(
            (
                self.functional_units,
                self.registers,
                self.multiplexers,
                self.controller,
                self.wiring,
            )
        )

    def as_dict(self) -> Dict[str, Triplet]:
        return {
            "functional_units": self.functional_units,
            "registers": self.registers,
            "multiplexers": self.multiplexers,
            "controller": self.controller,
            "wiring": self.wiring,
        }


@dataclass(frozen=True, slots=True)
class DesignPrediction:
    """One predicted implementation of one partition."""

    partition: str
    module_set: ModuleSet
    timing: OperationTiming
    pipelined: bool
    #: Units allocated per resource class (op-type value or ``mem:<block>``).
    operators: Mapping[str, int]
    #: Initiation interval and latency in datapath cycles.
    ii_dp: int
    latency_dp: int
    #: The same quantities in main-clock cycles (as the paper's tables).
    ii_main: int
    latency_main: int
    register_bits: int
    register_words: int
    mux_count: int
    area: AreaBreakdown
    controller: PlaEstimate
    #: Delay added to each datapath cycle (register + mux + wiring + PLA).
    clock_overhead_ns: float
    #: Bits moved against each memory block per iteration.
    memory_bandwidth_bits: Mapping[str, int]
    #: Partition boundary sizes, used to size data-transfer tasks.
    input_bits: int
    output_bits: int
    #: Average power of the implementation (the paper's section-5
    #: extension), in milliwatts.
    power_mw: Triplet = Triplet.zero()

    @property
    def stages(self) -> int:
        """Control steps of the datapath schedule (the paper's 'stages')."""
        return self.latency_dp

    @property
    def style_label(self) -> str:
        kind = "pipelined" if self.pipelined else "non-pipelined"
        return f"{kind}, {self.timing.value}"

    @property
    def area_total(self) -> Triplet:
        return self.area.total

    def operator_summary(self) -> str:
        """Human-readable operator allocation, e.g. ``2 add, 3 mul``."""
        parts = [
            f"{units} {cls}" for cls, units in sorted(self.operators.items())
        ]
        return ", ".join(parts)

    def dominates(self, other: "DesignPrediction") -> bool:
        """Pareto dominance on (II, latency, most-likely area).

        Used by the pruning machinery to drop *inferior* predictions: a
        design no better than another in any dimension and worse in at
        least one.
        """
        no_worse = (
            self.ii_main <= other.ii_main
            and self.latency_main <= other.latency_main
            and self.area_total.ml <= other.area_total.ml
        )
        better = (
            self.ii_main < other.ii_main
            or self.latency_main < other.latency_main
            or self.area_total.ml < other.area_total.ml
        )
        return no_worse and better

    def guideline_lines(self) -> List[str]:
        """The section-3.1-style synthesis guidance for this design."""
        lines = [
            f"a {self.style_label} design style with {self.stages} stages",
            f"module library of {self.module_set.label}",
            self.operator_summary(),
            f"{self.register_bits} bits of registers for the data path",
            f"{self.mux_count} 1-bit 2-to-1 multiplexers",
            (
                f"predicted area {self.area_total} mil^2, initiation "
                f"interval {self.ii_main}, delay {self.latency_main} "
                "(main clock cycles)"
            ),
        ]
        if self.memory_bandwidth_bits:
            for block, bits in sorted(self.memory_bandwidth_bits.items()):
                lines.append(f"memory {block}: {bits} bits per iteration")
        return lines

    def sort_key(self) -> Tuple[int, int, float]:
        """Paper ordering: II first, then circuit delay (Figure 5)."""
        return (self.ii_main, self.latency_main, self.area_total.ml)
