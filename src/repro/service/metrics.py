"""Request counters, latency histograms and subsystem gauges.

Everything is in-process and lock-protected.  Request metrics live here;
subsystem statistics (verdict cache, job queue, session registry, the
evaluation engine's shard counters and worker utilization, the disk
prediction cache's hit rate) are pulled in through *registered gauge
suppliers* — each subsystem exposes a ``stats()`` callable and
:meth:`Metrics.register_gauges` stitches them into the one ``/metrics``
snapshot, so adding a subsystem never means editing the snapshot code.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from typing import Any, Callable, Deque, Dict, List

#: Latency samples retained per route — enough for stable p50/p95 under
#: bursty interactive traffic without unbounded growth.
MAX_SAMPLES = 2048


def percentile(samples: List[float], q: float) -> float:
    """Linear-interpolated percentile (q in [0, 100]) of a non-empty list.

    Uses the standard exclusive-of-nothing definition (numpy's default):
    the percentile position is ``q/100 * (n-1)`` and values between ranks
    interpolate linearly — so the p50 of ``[1, 2]`` is ``1.5``, not ``2``
    as the old nearest-rank rounding produced.
    """
    ordered = sorted(samples)
    n = len(ordered)
    if n == 1:
        return ordered[0]
    position = max(0.0, min(100.0, q)) / 100.0 * (n - 1)
    lower = int(position)
    upper = min(lower + 1, n - 1)
    fraction = position - lower
    return ordered[lower] + (ordered[upper] - ordered[lower]) * fraction


class Metrics:
    """Per-route request counts, status counts and latency percentiles."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._requests: Dict[str, int] = defaultdict(int)
        self._statuses: Dict[int, int] = defaultdict(int)
        self._latencies: Dict[str, Deque[float]] = defaultdict(
            lambda: deque(maxlen=MAX_SAMPLES)
        )
        self._gauges: Dict[str, Callable[[], Any]] = {}

    def register_gauges(
        self, label: str, supplier: Callable[[], Any]
    ) -> None:
        """Attach a subsystem's ``stats()`` callable to the snapshot.

        ``supplier`` is invoked on every :meth:`snapshot` and its result
        appears under ``label``; suppliers must be thread-safe and cheap.
        """
        with self._lock:
            self._gauges[label] = supplier

    def observe(self, route: str, seconds: float, status: int) -> None:
        """Record one finished request."""
        with self._lock:
            self._requests[route] += 1
            self._statuses[status] += 1
            self._latencies[route].append(seconds)

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable view of everything recorded so far."""
        with self._lock:
            suppliers = dict(self._gauges)
            routes: Dict[str, Any] = {}
            for route, count in sorted(self._requests.items()):
                samples = list(self._latencies[route])
                routes[route] = {
                    "count": count,
                    "latency_ms": {
                        "p50": round(percentile(samples, 50) * 1000, 3),
                        "p95": round(percentile(samples, 95) * 1000, 3),
                    }
                    if samples
                    else None,
                }
            doc = {
                "requests_total": sum(self._requests.values()),
                "responses_by_status": {
                    str(code): count
                    for code, count in sorted(self._statuses.items())
                },
                "routes": routes,
            }
        # Suppliers run outside our lock: they take their own locks and
        # must never nest under this one.
        for label, supplier in sorted(suppliers.items()):
            doc[label] = supplier()
        return doc
