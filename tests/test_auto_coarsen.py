"""Coarsening invariants: exact covers, acyclicity, determinism."""

from __future__ import annotations

import pytest
from hypothesis import given, settings

from repro.auto import base_cluster_graph, coarsen, verify_chain
from repro.auto.initial import part_weights, topo_interval_split
from repro.auto.refine import RefineStats, fm_refine
from repro.dfg.builders import generate_dfg
from repro.errors import PartitioningError

from tests.strategies import dags


def _cover(level, graph):
    ops = set()
    for members in level.graph.members.values():
        assert not (ops & members), "clusters overlap"
        ops |= members
    assert ops == set(graph.operations)


def test_base_cluster_graph_mirrors_the_graph():
    graph = generate_dfg("chain", 40)
    cg = base_cluster_graph(graph)
    assert len(cg) == graph.op_count()
    assert cg.total_weight() == graph.op_count()
    # every directed edge weight equals the summed value widths
    total = sum(w for t in cg.succ.values() for w in t.values())
    internal = sum(
        value.width * len(graph.consumers(value.id))
        for value in graph.values.values()
        if value.producer is not None
    )
    assert total == internal


@pytest.mark.parametrize("kind", ["layered", "chain", "butterfly"])
def test_hierarchy_invariants(kind):
    graph = generate_dfg(kind, 200, seed=3)
    levels = coarsen(graph, target_clusters=8)
    assert len(levels) >= 2, "coarsening made no progress"
    previous = None
    for level in levels:
        _cover(level, graph)
        level.graph.topological_order()  # raises on a cycle
        if previous is not None:
            assert len(level.graph) < len(previous.graph)
            # projection maps every finer cluster onto this level
            assert set(level.projection) == set(previous.graph.members)
            assert set(level.projection.values()) == set(
                level.graph.members
            )
        previous = level
    assert len(levels[-1].graph) <= max(8, len(levels[-2].graph) - 1)


def test_coarsen_respects_cluster_weight_bound():
    graph = generate_dfg("layered", 300, seed=5)
    levels = coarsen(graph, target_clusters=4, max_cluster_weight=30)
    for level in levels:
        assert max(
            level.graph.weight(c) for c in level.graph.members
        ) <= 30


def test_coarsen_is_deterministic():
    graph = generate_dfg("layered", 150, seed=9)
    a = coarsen(graph, target_clusters=10)
    b = coarsen(graph, target_clusters=10)
    assert len(a) == len(b)
    for la, lb in zip(a, b):
        assert la.graph.members == lb.graph.members
        assert la.graph.succ == lb.graph.succ
        assert la.projection == lb.projection


def test_coarsen_rejects_bad_target():
    graph = generate_dfg("chain", 20)
    with pytest.raises(PartitioningError):
        coarsen(graph, target_clusters=0)


@given(dags(max_ops=40))
@settings(max_examples=40, deadline=None)
def test_every_level_stays_acyclic(graph):
    for level in coarsen(graph, target_clusters=2):
        level.graph.topological_order()


def test_topo_interval_split_is_a_balanced_chain():
    graph = generate_dfg("layered", 240, seed=1)
    cg = base_cluster_graph(graph)
    part_of = topo_interval_split(cg, 4)
    verify_chain(cg, part_of)
    weights = part_weights(cg, part_of, 4)
    assert sum(weights) == 240
    assert min(weights) > 0
    assert max(weights) <= 240 // 4 + cg.total_weight() // 10 + 1


def test_fm_refine_reduces_or_keeps_cut_and_preserves_chain():
    graph = generate_dfg("butterfly", 400)
    cg = base_cluster_graph(graph)
    part_of = topo_interval_split(cg, 4)
    before = cg.cut_bits(part_of)
    stats = RefineStats()
    fm_refine(cg, part_of, 4, stats=stats)
    verify_chain(cg, part_of)
    assert stats.cut_after <= before
    assert stats.cut_before == before
    weights = part_weights(cg, part_of, 4)
    assert min(weights) > 0
