"""HTTP/JSON front end for CHOP designer sessions.

Stdlib-only (``http.server`` + threads): the point of the paper's system
is that feasibility *prediction* is fast enough to sit inside a human
iteration loop, so the server's job is to keep that loop interactive
across many concurrent designers — checks answer on the request thread
through a memoization cache, while design-space enumerations go to a
background job queue.

Endpoints::

    POST /projects                  upload a project document -> id
    GET  /projects/{id}             describe a resident session
    POST /projects/{id}/check       synchronous feasibility check
    POST /projects/{id}/enumerate   background search -> job id
    GET  /jobs/{id}                 poll job state / result
    POST /jobs/{id}/cancel          cooperative cancellation
    GET  /healthz                   liveness
    GET  /metrics                   counters, latencies, cache, queue

All request and response bodies are JSON.  Errors come back as
``{"error": msg, "type": kind}`` with 400 (malformed input), 404
(unknown id) or 422 (well-formed but un-servable, e.g. no feasible
prediction survives pruning).

:class:`ChopService` is pure request->response logic; :func:`make_server`
binds it to a ``ThreadingHTTPServer`` socket.
"""

from __future__ import annotations

import json
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Optional, Tuple

from repro.engine import DiskPredictionCache, EvaluationEngine
from repro.errors import ChopError, SpecificationError
from repro.service.cache import LRUCache, check_cache_key
from repro.service.jobs import JobQueue
from repro.service.metrics import Metrics
from repro.service.sessions import SessionEntry, SessionRegistry

HEURISTICS = ("iterative", "enumeration")

Response = Tuple[int, Dict[str, Any], str]


class ServiceError(Exception):
    """An error with a definite HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ChopService:
    """The serving-layer facade: sessions + cache + jobs + metrics."""

    def __init__(
        self,
        cache_size: int = 256,
        max_sessions: int = 32,
        workers: int = 2,
        job_timeout_s: Optional[float] = 300.0,
        search_workers: int = 0,
        disk_cache_dir: Optional[str] = None,
        start_method: Optional[str] = None,
    ) -> None:
        self.sessions = SessionRegistry(capacity=max_sessions)
        self.cache = LRUCache(capacity=cache_size)
        self.jobs = JobQueue(
            workers=workers, default_timeout_s=job_timeout_s
        )
        # ``workers`` threads drain the job queue; ``search_workers``
        # processes shard each enumeration's combination walk.
        self.engine: Optional[EvaluationEngine] = (
            EvaluationEngine(
                workers=search_workers, start_method=start_method
            )
            if search_workers > 1
            else None
        )
        self.disk_cache: Optional[DiskPredictionCache] = (
            DiskPredictionCache(disk_cache_dir)
            if disk_cache_dir
            else None
        )
        self.metrics = Metrics()
        self.metrics.register_gauges("cache", self.cache.stats)
        self.metrics.register_gauges("jobs", self.jobs.depth)
        self.metrics.register_gauges("sessions", self.sessions.stats)
        if self.engine is not None:
            self.metrics.register_gauges("engine", self.engine.stats)
        if self.disk_cache is not None:
            self.metrics.register_gauges(
                "disk_cache", self.disk_cache.stats
            )
        self.started_at = time.time()

    def close(self) -> None:
        self.jobs.shutdown()

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------
    def handle(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Response:
        """Serve one request; returns (status, payload, route label).

        The route label is the metrics key — the path template with ids
        elided, so per-endpoint latencies aggregate across tenants.
        """
        try:
            return self._route(method, path, body)
        except ServiceError as exc:
            return (
                exc.status,
                {"error": str(exc), "type": "service"},
                f"{method} {path}",
            )
        except SpecificationError as exc:
            return (
                400,
                {"error": str(exc), "type": "specification"},
                f"{method} {path}",
            )
        except ChopError as exc:
            payload: Dict[str, Any] = {
                "error": str(exc),
                "type": type(exc).__name__,
            }
            detail = getattr(exc, "detail", None)
            if callable(detail):
                # Structured errors (e.g. CombinationExplosionError)
                # carry actionable data — ship it with the 4xx.
                payload["detail"] = detail()
            return 422, payload, f"{method} {path}"

    def _route(
        self, method: str, path: str, body: Optional[bytes]
    ) -> Response:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and parts == ["healthz"]:
            return 200, self._healthz(), "GET /healthz"
        if method == "GET" and parts == ["metrics"]:
            return 200, self._metrics(), "GET /metrics"
        if method == "POST" and parts == ["projects"]:
            status, payload = self._upload(self._json_body(body))
            return status, payload, "POST /projects"
        if len(parts) == 2 and parts[0] == "projects" and method == "GET":
            entry = self._entry(parts[1])
            return 200, entry.to_dict(), "GET /projects/{id}"
        if len(parts) == 3 and parts[0] == "projects":
            entry = self._entry(parts[1])
            if method == "POST" and parts[2] == "check":
                payload = self._check(entry, self._json_body(body, {}))
                return 200, payload, "POST /projects/{id}/check"
            if method == "POST" and parts[2] == "enumerate":
                payload = self._enumerate(
                    entry, self._json_body(body, {})
                )
                return 202, payload, "POST /projects/{id}/enumerate"
        if len(parts) == 2 and parts[0] == "jobs" and method == "GET":
            return 200, self._job(parts[1]).to_dict(), "GET /jobs/{id}"
        if (
            len(parts) == 3
            and parts[0] == "jobs"
            and parts[2] == "cancel"
            and method == "POST"
        ):
            job = self._job(parts[1])
            self.jobs.cancel(job.id)
            return 202, job.to_dict(), "POST /jobs/{id}/cancel"
        raise ServiceError(404, f"no route for {method} {path}")

    # ------------------------------------------------------------------
    # endpoint bodies
    # ------------------------------------------------------------------
    def _healthz(self) -> Dict[str, Any]:
        return {
            "status": "ok",
            "uptime_s": round(time.time() - self.started_at, 3),
        }

    def _metrics(self) -> Dict[str, Any]:
        # Subsystem gauges (cache, jobs, sessions, engine, disk_cache)
        # are registered suppliers — the snapshot carries everything.
        return self.metrics.snapshot()

    def _upload(
        self, document: Any
    ) -> Tuple[int, Dict[str, Any]]:
        if not isinstance(document, dict):
            raise ServiceError(
                400, "project upload must be a JSON object"
            )
        entry, created = self.sessions.put(document)
        payload = entry.to_dict()
        payload["created"] = created
        return (201 if created else 200), payload

    def _check(
        self, entry: SessionEntry, options: Dict[str, Any]
    ) -> Dict[str, Any]:
        heuristic = options.get("heuristic", "iterative")
        prune = bool(options.get("prune", True))
        if heuristic not in HEURISTICS:
            raise ServiceError(
                400,
                f"unknown heuristic {heuristic!r}; use one of "
                f"{list(HEURISTICS)}",
            )
        key = check_cache_key(entry.fingerprint, heuristic, prune)

        def compute() -> Dict[str, Any]:
            with entry.lock:
                return self._checked(
                    entry, heuristic=heuristic, prune=prune
                ).to_dict()

        result, hit = self.cache.get_or_compute(key, compute)
        return {
            "project_id": entry.project_id,
            "cache_hit": hit,
            "result": result,
        }

    def _checked(self, entry: SessionEntry, **options: Any):
        """Run one check under the disk prediction cache, if configured.

        Seeds the session's prediction cache from disk before the check
        and persists the (possibly freshly computed) predictions after a
        miss — so an identical project checked after a restart skips BAD
        prediction entirely.  Callers must hold ``entry.lock``.
        """
        options.setdefault("engine", self.engine)
        if self.disk_cache is None:
            return entry.session.check(**options)
        session = entry.session
        disk_key = self.disk_cache.key_for(
            entry.fingerprint, session.library, session.clocks
        )
        cached = self.disk_cache.load(disk_key)
        if cached is not None:
            session.seed_predictions(cached)
        result = session.check(**options)
        if cached is None:
            self.disk_cache.store(
                disk_key, session.export_predictions()
            )
        return result

    def _enumerate(
        self, entry: SessionEntry, options: Dict[str, Any]
    ) -> Dict[str, Any]:
        heuristic = options.get("heuristic", "enumeration")
        prune = bool(options.get("prune", True))
        timeout_s = options.get("timeout_s")
        if heuristic not in HEURISTICS:
            raise ServiceError(
                400,
                f"unknown heuristic {heuristic!r}; use one of "
                f"{list(HEURISTICS)}",
            )
        if timeout_s is not None:
            try:
                timeout_s = float(timeout_s)
            except (TypeError, ValueError):
                raise ServiceError(
                    400, f"timeout_s must be a number, got {timeout_s!r}"
                ) from None

        def run(job) -> Dict[str, Any]:
            with entry.lock:
                return self._checked(
                    entry,
                    heuristic=heuristic,
                    prune=prune,
                    cancel=job.should_stop,
                    progress=job.report_progress,
                ).to_dict()

        job = self.jobs.submit(
            run,
            kind=f"{heuristic}:{entry.project_id}",
            timeout_s=timeout_s,
            pass_job=True,
        )
        return job.to_dict()

    # ------------------------------------------------------------------
    # lookups and parsing
    # ------------------------------------------------------------------
    def _entry(self, project_id: str) -> SessionEntry:
        entry = self.sessions.get(project_id)
        if entry is None:
            raise ServiceError(
                404,
                f"unknown project {project_id!r}; upload it via "
                "POST /projects (ids expire under the LRU policy)",
            )
        return entry

    def _job(self, job_id: str):
        job = self.jobs.get(job_id)
        if job is None:
            raise ServiceError(404, f"unknown job {job_id!r}")
        return job

    @staticmethod
    def _json_body(body: Optional[bytes], default: Any = None) -> Any:
        if not body:
            if default is not None:
                return default
            raise ServiceError(400, "request body required")
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(
                400, f"invalid JSON body: {exc}"
            ) from None


# ----------------------------------------------------------------------
# socket binding
# ----------------------------------------------------------------------
class _Handler(BaseHTTPRequestHandler):
    service: ChopService  # injected by make_server
    quiet = True
    protocol_version = "HTTP/1.1"

    # Route through one dispatcher per method.
    def do_GET(self) -> None:  # noqa: N802 — BaseHTTPRequestHandler API
        self._dispatch("GET")

    def do_POST(self) -> None:  # noqa: N802
        self._dispatch("POST")

    def _dispatch(self, method: str) -> None:
        started = time.perf_counter()
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else None
        status, payload, route = self.service.handle(
            method, self.path, body
        )
        data = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)
        self.service.metrics.observe(
            route, time.perf_counter() - started, status
        )

    def log_message(self, format: str, *args: Any) -> None:
        if not self.quiet:
            super().log_message(format, *args)


def make_server(
    service: ChopService, host: str = "127.0.0.1", port: int = 8080
) -> ThreadingHTTPServer:
    """Bind the service to a threading HTTP server (not yet serving)."""
    handler = type("ChopHandler", (_Handler,), {"service": service})
    server = ThreadingHTTPServer((host, port), handler)
    server.daemon_threads = True
    return server


def serve(
    service: ChopService, host: str = "127.0.0.1", port: int = 8080
) -> None:
    """Run the server until interrupted (the CLI entry point)."""
    server = make_server(service, host, port)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.shutdown()
        server.server_close()
        service.close()
