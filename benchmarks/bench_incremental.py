"""Cold check vs warm re-check through the incremental eval context.

Replays the paper's designer loop (section 2.7) on a long multiply-add
chain cut into 8 partitions: check, migrate one boundary operation to
the next partition, re-check.  The cold check predicts every partition
from scratch; the warm re-check pays only for the two partitions the
migration touched, plus an incremental task-graph update.  Every warm
result is asserted byte-identical to a fresh session evaluating the
same partitioning from scratch.

Timings are medians over ``--reps`` independent cold/warm cycles (one
check is a couple hundred milliseconds, so single-shot ratios are
noisy).  The full run gates on a >= 3x median warm speedup; ``--smoke``
keeps every identity assertion but skips the timing gate and shrinks
the loop, so CI stays fast and timing-independent.

Run directly (no pytest needed)::

    python benchmarks/bench_incremental.py            # full, gated
    python benchmarks/bench_incremental.py --smoke    # CI mode

Writes ``benchmarks/results/incremental_speedup.txt`` and a
machine-readable ``benchmarks/results/BENCH_incremental.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

STAGES = 36
PARTITIONS = 8
SPEEDUP_GATE = 3.0


def chain_graph(stages: int):
    """A multiply-accumulate chain: acc = acc * k[i] + x[i]."""
    from repro.dfg.builders import GraphBuilder

    builder = GraphBuilder(f"chain{stages}", default_width=16)
    xs = [builder.input(f"x{i}") for i in range(stages)]
    ks = [builder.input(f"k{i}") for i in range(stages)]
    acc = xs[0]
    for i in range(stages):
        acc = builder.add(
            builder.mul(acc, ks[i], name=f"m{i}"), xs[i], name=f"a{i}"
        )
    builder.output(acc)
    return builder.build()


def build_session(stages: int = STAGES, parts: int = PARTITIONS):
    from repro.bad.styles import (
        ArchitectureStyle, ClockScheme, OperationTiming,
    )
    from repro.chips.presets import mosis_package
    from repro.core.chop import ChopSession
    from repro.core.feasibility import FeasibilityCriteria
    from repro.core.schemes import horizontal_cut

    from repro.library.presets import extended_library

    graph = chain_graph(stages)
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0, dp_multiplier=10),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=400_000.0, delay_ns=400_000.0
        ),
    )
    parts_list = horizontal_cut(graph, parts)
    assignment = {}
    for index, part in enumerate(parts_list):
        chip = f"chip{index + 1}"
        session.add_chip(chip, mosis_package(2))
        assignment[part.name] = chip
    session.set_partitions(parts_list, assignment)
    return session


def boundary_migration(session) -> bool:
    """Move one producer-boundary op into the next partition.

    On a chain cut into horizontal bands the last operation of band k
    feeds only band k+1, so migrating it keeps the flow one-way; the
    first such move that validates is applied.  Deterministic, so every
    rep times the same designer edit.
    """
    from repro.errors import PartitioningError

    names = sorted(session._partitions)
    for src, dst in zip(names, names[1:]):
        for op in sorted(session._partitions[src].op_ids):
            successors = session.graph.successors(op)
            if successors and all(
                c in session._partitions[dst].op_ids
                for c in successors
            ):
                try:
                    session.migrate_operations(src, dst, [op])
                    return True
                except PartitioningError:
                    continue
    return False


def comparable(result) -> dict:
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


def fresh_check(session):
    """A from-scratch session holding the same partitioning."""
    clone = build_session()
    clone.set_partitions(
        list(session._partitions.values()),
        dict(session._partition_chip),
    )
    return clone.check()


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="identity checks only, no timing gate (the CI mode)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="cold/warm cycles to median over (default 7, or 2 with "
        "--smoke)",
    )
    parser.add_argument(
        "--moves", type=int, default=None,
        help="designer-loop length for the per-move table (default 6, "
        "or 2 with --smoke)",
    )
    args = parser.parse_args(argv)

    reps = args.reps or (2 if args.smoke else 7)
    moves = args.moves or (2 if args.smoke else 6)

    failures = []

    # Phase 1 — the gated measurement: one migration, cold vs warm,
    # median over independent cycles.
    colds, warms = [], []
    for _ in range(reps):
        session = build_session()
        started = time.perf_counter()
        session.check()
        colds.append(time.perf_counter() - started)
        if not boundary_migration(session):
            failures.append("no legal boundary migration found")
            break
        started = time.perf_counter()
        warm_result = session.check()
        warms.append(time.perf_counter() - started)
        if comparable(warm_result) != comparable(fresh_check(session)):
            failures.append(
                "warm re-check differs from a fresh session"
            )
            break
    cold_s = statistics.median(colds)
    warm_s = statistics.median(warms) if warms else float("inf")
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    # Phase 2 — an N-move designer loop on one long-lived session:
    # per-move warm wall-clock plus the context's own counters.
    session = build_session()
    session.check()
    move_rows = []
    for move in range(1, moves + 1):
        if not boundary_migration(session):
            failures.append(f"designer loop stalled at move {move}")
            break
        started = time.perf_counter()
        result = session.check()
        elapsed = time.perf_counter() - started
        if comparable(result) != comparable(fresh_check(session)):
            failures.append(f"move {move} differs from fresh session")
            break
        move_rows.append((move, elapsed, result.feasible_trials))
    stats = session.eval_stats()

    graph_ops = STAGES * 2
    lines = [
        f"Incremental re-evaluation — {graph_ops}-op chain, "
        f"{PARTITIONS} partitions, median of {reps} cycles",
        "",
        f"cold check        {cold_s * 1000:>8.1f} ms",
        f"warm re-check     {warm_s * 1000:>8.1f} ms  "
        f"(one migrate_operations)",
        f"speedup           {speedup:>8.2f} x",
        "",
        f"designer loop ({len(move_rows)} moves on one session):",
        f"{'move':>6} {'wall ms':>9} {'feasible':>9}",
    ]
    for move, elapsed, feasible in move_rows:
        lines.append(
            f"{move:>6} {elapsed * 1000:>9.1f} {feasible:>9}"
        )
    taskgraph = stats["taskgraph"]
    lines.append("")
    lines.append(
        f"context: {stats['hits']} hits, {stats['misses']} misses, "
        f"{taskgraph['incremental_updates']} incremental task-graph "
        f"updates ({taskgraph['pairs_reused']} cut pairs reused, "
        f"{taskgraph['pairs_rebuilt']} rebuilt)"
    )
    lines.append(
        "identity: "
        + ("FAILED: " + "; ".join(failures) if failures else
           "every warm re-check byte-identical to a fresh session")
    )
    table = "\n".join(lines)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "incremental_speedup.txt")
    with open(out_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\nwrote {out_path}")

    json_doc = {
        "bench": "incremental_recheck",
        "graph_ops": graph_ops,
        "partitions": PARTITIONS,
        "reps": reps,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 3),
        "identity_ok": not failures,
        "designer_loop": [
            {
                "move": move,
                "wall_s": round(elapsed, 6),
                "feasible": feasible,
            }
            for move, elapsed, feasible in move_rows
        ],
        "context": {
            "hits": stats["hits"],
            "misses": stats["misses"],
            "evictions": stats["evictions"],
            "taskgraph_incremental_updates": (
                taskgraph["incremental_updates"]
            ),
            "taskgraph_pairs_reused": taskgraph["pairs_reused"],
            "taskgraph_pairs_rebuilt": taskgraph["pairs_rebuilt"],
        },
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_incremental.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    if failures:
        return 1
    if not args.smoke and speedup < SPEEDUP_GATE:
        print(
            f"FAILED: expected >= {SPEEDUP_GATE}x warm speedup, "
            f"measured {speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
