"""Table 3: statistics on BAD's predictions for experiment 1.

Paper values (for scale comparison; see EXPERIMENTS.md):

    partitions  total predictions  feasible predictions
    1           111                5
    2           207                25
    3           236                32

"Total" counts every prediction BAD emits; "feasible" those surviving
the first-level feasibility prune (without the inferior-design filter,
which the paper reports separately as part of the search).
"""

from __future__ import annotations

import pytest

from repro.experiments import experiment1_session
from repro.reporting.tables import prediction_stats_table


def _bad_stats(partition_count: int):
    session = experiment1_session(
        package_number=2, partition_count=partition_count
    )
    raw = session.predict_all()
    surviving = session.pruned_predictions(drop_inferior=False)
    total = sum(len(preds) for preds in raw.values())
    feasible = sum(len(preds) for preds in surviving.values())
    return total, feasible


def test_table3_bad_statistics(benchmark, save_artifact):
    stats = {}

    def run_all():
        for count in (1, 2, 3):
            stats[count] = _bad_stats(count)
        return stats

    benchmark.pedantic(run_all, rounds=1, iterations=1)
    text = prediction_stats_table(stats)
    save_artifact("table3_bad_stats_exp1.txt", text)

    totals = [stats[n][0] for n in (1, 2, 3)]
    feasibles = [stats[n][1] for n in (1, 2, 3)]
    # Paper shape: totals grow with partition count, feasible counts too,
    # and the feasible fraction stays small.
    assert totals[0] < totals[2] * 2  # same order of magnitude
    assert all(f >= 1 for f in feasibles)
    assert feasibles[0] < feasibles[1] <= feasibles[2] * 2
    assert all(f < t for f, t in zip(feasibles, totals))


@pytest.mark.parametrize("count", [1, 2, 3])
def test_bad_prediction_speed(benchmark, count):
    """The fast-feedback claim: predicting a whole partitioning's
    implementation lists takes well under a second."""
    session = experiment1_session(2, count)

    def predict_fresh():
        session.clear_prediction_caches()
        return session.predict_all()

    result = benchmark.pedantic(predict_fresh, rounds=3, iterations=1)
    assert all(result.values())
