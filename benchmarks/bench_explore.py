"""Cold vs warm design-space sweeps, plus Pareto-front quality gates.

Sweeps a generated 200-operation layered DFG over chip counts 1-4 with
``repro.explore`` twice against the same disk prediction cache: the
cold sweep predicts every candidate partition through BAD and persists
the lists; the warm sweep seeds every candidate from disk and pays only
for pruning + search.  Timings are medians over ``--reps`` independent
cold/warm cycles (each cycle gets a fresh cache directory).

Gates (the acceptance criteria of the explore subsystem):

* the front is non-degenerate — at least 3 non-dominated points
  spanning at least 2 distinct chip counts;
* every front point's embedded project document re-loads through
  ``load_project`` and re-checks feasible, with the same best design;
* the warm sweep returns the identical front (modulo the
  ``cache_seeded`` counter); and
* (full mode only) the median warm sweep is >= 3x faster than cold.

``--smoke`` keeps every correctness gate but skips the timing gate and
runs one cycle, so CI stays fast and timing-independent.

Run directly (no pytest needed)::

    python benchmarks/bench_explore.py            # full, gated
    python benchmarks/bench_explore.py --smoke    # CI mode

Writes ``benchmarks/results/explore_front.txt`` and a machine-readable
``benchmarks/results/BENCH_explore.json``.
"""

from __future__ import annotations

import argparse
import json
import os
import statistics
import sys
import tempfile
import time
from typing import List, Optional

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

RESULTS_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                           "results")

OPS = 200
SEED = 7
CHIP_COUNTS = (1, 2, 3, 4)
SPEEDUP_GATE = 3.0
MIN_FRONT_POINTS = 3
MIN_CHIP_SPAN = 2


def build_graph():
    from repro.dfg.builders import generate_dfg

    return generate_dfg("layered", OPS, seed=SEED)


def run_sweep(graph, cache):
    from repro.explore import ExploreConfig, explore

    config = ExploreConfig(chip_counts=CHIP_COUNTS)
    return explore(graph, config, disk_cache=cache)


def comparable(result) -> dict:
    """The sweep's dict with the cold/warm-dependent counter removed."""
    doc = result.to_dict()
    doc.pop("cache_seeded", None)
    return doc


def front_failures(result) -> List[str]:
    """Check the non-degeneracy and round-trip gates on one sweep."""
    from repro.io.project import load_project

    failures: List[str] = []
    front = result.front
    if len(front) < MIN_FRONT_POINTS:
        failures.append(
            f"front has {len(front)} points, expected >= "
            f"{MIN_FRONT_POINTS}"
        )
    chip_span = {point.chips for point in front}
    if len(chip_span) < MIN_CHIP_SPAN:
        failures.append(
            f"front spans {len(chip_span)} chip counts "
            f"({sorted(chip_span)}), expected >= {MIN_CHIP_SPAN}"
        )
    for point in front:
        session = load_project(point.project)
        check = session.check()
        if not check.feasible:
            failures.append(
                f"front point k={point.chips} s={point.package_scale:g} "
                f"re-checked infeasible"
            )
            continue
        best = check.best()
        if (best.ii_main, best.delay_main) != (
            point.ii_main, point.delay_main
        ):
            failures.append(
                f"front point k={point.chips} "
                f"s={point.package_scale:g}: re-checked best "
                f"(II {best.ii_main}, delay {best.delay_main}) != swept "
                f"(II {point.ii_main}, delay {point.delay_main})"
            )
    return failures


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="correctness gates only, no timing gate (the CI mode)",
    )
    parser.add_argument(
        "--reps", type=int, default=None,
        help="cold/warm cycles to median over (default 3, or 1 with "
        "--smoke)",
    )
    args = parser.parse_args(argv)
    reps = args.reps or (1 if args.smoke else 3)

    graph = build_graph()
    failures: List[str] = []
    colds: List[float] = []
    warms: List[float] = []
    cold_result = None

    from repro.engine import DiskPredictionCache

    for _ in range(reps):
        with tempfile.TemporaryDirectory() as directory:
            cache = DiskPredictionCache(directory)
            started = time.perf_counter()
            cold = run_sweep(graph, cache)
            colds.append(time.perf_counter() - started)
            started = time.perf_counter()
            warm = run_sweep(graph, cache)
            warms.append(time.perf_counter() - started)
            if cold_result is None:
                cold_result = cold
            if warm.cache_seeded == 0:
                failures.append(
                    "warm sweep seeded nothing from the disk cache"
                )
            if comparable(warm) != comparable(cold):
                failures.append(
                    "warm sweep result differs from cold sweep"
                )
    cold_s = statistics.median(colds)
    warm_s = statistics.median(warms)
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")

    failures.extend(front_failures(cold_result))
    front = cold_result.front

    lines = [
        f"Design-space sweep — {OPS}-op layered DFG (seed {SEED}), "
        f"chip counts {list(CHIP_COUNTS)}, median of {reps} cycles",
        "",
        f"cold sweep        {cold_s * 1000:>8.1f} ms  "
        f"({cold_result.evaluated} candidates, BAD predicts everything)",
        f"warm sweep        {warm_s * 1000:>8.1f} ms  "
        f"(predictions seeded from the disk cache)",
        f"speedup           {speedup:>8.2f} x",
        "",
        f"Pareto front over (cost, performance, delay, chips) — "
        f"{len(front)} points:",
        f"{'chips':>6} {'scale':>6} {'cost $':>10} {'perf ns':>9} "
        f"{'delay ns':>9} {'II':>4}",
    ]
    for point in front:
        lines.append(
            f"{point.chips:>6} {point.package_scale:>6g} "
            f"{point.cost:>10.2f} {point.performance_ns:>9.0f} "
            f"{point.delay_ns:>9.0f} {point.ii_main:>4}"
        )
    lines.append("")
    lines.append(
        "gates: "
        + ("FAILED: " + "; ".join(failures) if failures else
           f"front >= {MIN_FRONT_POINTS} points over >= "
           f"{MIN_CHIP_SPAN} chip counts; every point re-checks "
           f"feasible via load_project; warm == cold")
    )
    table = "\n".join(lines)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    out_path = os.path.join(RESULTS_DIR, "explore_front.txt")
    with open(out_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\nwrote {out_path}")

    json_doc = {
        "bench": "explore_sweep",
        "graph_ops": OPS,
        "seed": SEED,
        "chip_counts": list(CHIP_COUNTS),
        "reps": reps,
        "cold_s": round(cold_s, 6),
        "warm_s": round(warm_s, 6),
        "speedup": round(speedup, 3),
        "front_points": len(front),
        "chip_span": sorted({point.chips for point in front}),
        "gates_ok": not failures,
        "front": [
            point.to_dict(
                cold_result.config.objectives, include_project=False
            )
            for point in front
        ],
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_explore.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    if failures:
        print("FAILED: " + "; ".join(failures))
        return 1
    if not args.smoke and speedup < SPEEDUP_GATE:
        print(
            f"FAILED: expected >= {SPEEDUP_GATE}x warm speedup, "
            f"measured {speedup:.2f}x"
        )
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
