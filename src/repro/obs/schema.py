"""The trace-record schema and its validator.

One place defines what a span record looks like; the tracer builds
records through :func:`repro.obs.tracing.make_span_record`, and this
module checks them — in tests, in ``repro trace show``, and in CI via
``benchmarks/check_trace_schema.py`` (which validates every line of the
smoke run's trace artifact).  The field reference lives in
``docs/observability.md``; keep the three in sync.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Tuple

from repro.obs.tracing import TRACE_SCHEMA_VERSION

#: field name -> (accepted types, required)
SPAN_FIELDS: Dict[str, Tuple[tuple, bool]] = {
    "schema": ((int,), True),
    "trace_id": ((str,), True),
    "span_id": ((str,), True),
    "parent_id": ((str, type(None)), True),
    "name": ((str,), True),
    "start_s": ((int, float), True),
    "end_s": ((int, float), True),
    "elapsed_s": ((int, float), True),
    "status": ((str,), True),
    "counters": ((dict,), True),
    "attrs": ((dict,), True),
    "pid": ((int,), True),
}

VALID_STATUSES = ("ok", "error", "cancelled")


def validate_span(record: Mapping[str, Any]) -> List[str]:
    """Schema errors of one span record (empty list == valid)."""
    errors: List[str] = []
    for name, (types, required) in SPAN_FIELDS.items():
        if name not in record:
            if required:
                errors.append(f"missing field {name!r}")
            continue
        value = record[name]
        if isinstance(value, bool) and bool not in types:
            errors.append(f"field {name!r} must not be a boolean")
        elif not isinstance(value, types):
            errors.append(
                f"field {name!r} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}"
            )
    unknown = set(record) - set(SPAN_FIELDS)
    if unknown:
        errors.append(f"unknown fields: {sorted(unknown)}")
    if errors:
        return errors

    if record["schema"] != TRACE_SCHEMA_VERSION:
        errors.append(
            f"schema version {record['schema']} != "
            f"{TRACE_SCHEMA_VERSION}"
        )
    if record["status"] not in VALID_STATUSES:
        errors.append(
            f"status {record['status']!r} not in {VALID_STATUSES}"
        )
    if record["end_s"] < record["start_s"]:
        errors.append("end_s precedes start_s")
    if record["elapsed_s"] < 0:
        errors.append("negative elapsed_s")
    if not record["name"]:
        errors.append("empty span name")
    for key, value in record["counters"].items():
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            errors.append(
                f"counter {key!r} is not numeric "
                f"({type(value).__name__})"
            )
    return errors


def validate_trace(records: Iterable[Mapping[str, Any]]) -> List[str]:
    """Whole-trace errors: per-span schema plus tree integrity.

    Tree integrity, per trace id: span ids unique, every ``parent_id``
    resolves to a span of the same trace, and at least one root exists.
    Multiple traces in one file are fine (a service trace file
    interleaves jobs); each is checked independently.
    """
    errors: List[str] = []
    by_trace: Dict[str, Dict[str, Mapping[str, Any]]] = {}
    for index, record in enumerate(records):
        span_errors = validate_span(record)
        if span_errors:
            errors.extend(
                f"span {index}: {error}" for error in span_errors
            )
            continue
        spans = by_trace.setdefault(record["trace_id"], {})
        span_id = record["span_id"]
        if span_id in spans:
            errors.append(
                f"span {index}: duplicate span id {span_id!r} in "
                f"trace {record['trace_id']!r}"
            )
        spans[span_id] = record
    for trace_id, spans in sorted(by_trace.items()):
        roots = 0
        for span_id, record in spans.items():
            parent = record["parent_id"]
            if parent is None:
                roots += 1
            elif parent not in spans:
                errors.append(
                    f"trace {trace_id}: span {span_id} has unresolved "
                    f"parent {parent!r}"
                )
        if spans and roots == 0:
            errors.append(f"trace {trace_id}: no root span")
    return errors
