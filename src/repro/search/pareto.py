"""A shared n-dimensional Pareto dominance filter.

Two call sites need the same sort+sweep machinery: level-1 pruning
drops *inferior* per-partition predictions on (II, latency, area)
(:mod:`repro.search.pruning`), and the design-space explorer
(:mod:`repro.explore`) maintains a front over (cost, performance,
delay, chip count).  Keeping one implementation means one set of
semantics: **minimization** in every dimension, *strict* dominance
(no worse everywhere, better somewhere), ties kept.

:func:`pareto_front` is the batch filter; :class:`ParetoFront`
maintains the same set incrementally as candidates stream in, in any
order — the surviving set is a function of the candidate *set* alone,
which is what makes sweep results reproducible across evaluation
orders and process pools.
"""

from __future__ import annotations

from typing import (
    Callable,
    Generic,
    Iterable,
    List,
    Sequence,
    Tuple,
    TypeVar,
)

T = TypeVar("T")

#: An objective vector: smaller is better in every component.
Vector = Tuple[float, ...]


def dominates(a: Sequence[float], b: Sequence[float]) -> bool:
    """Strict Pareto dominance under minimization.

    ``a`` dominates ``b`` when it is no worse in every dimension and
    strictly better in at least one.  Equal vectors do not dominate
    each other — duplicates survive side by side, matching the
    prediction pruner's historical behaviour.
    """
    if len(a) != len(b):
        raise ValueError(
            f"objective vectors disagree on dimensionality: "
            f"{len(a)} vs {len(b)}"
        )
    better = False
    for x, y in zip(a, b):
        if x > y:
            return False
        if x < y:
            better = True
    return better


def pareto_front(
    items: Sequence[T],
    key: Callable[[T], Sequence[float]],
) -> List[T]:
    """The non-dominated subset of ``items`` under minimization of ``key``.

    Candidates are swept in lexicographic vector order, so any dominator
    of a candidate has already been seen: a candidate only needs
    comparing against the survivors so far, which keeps the common case
    (a short front over a long list) near-linear instead of O(n^2).
    Dominance is transitive, so checking survivors alone loses nothing —
    a dropped dominator is itself dominated by a survivor that also
    dominates the candidate.  Input order is preserved in the result,
    and the result is invariant under permutations of ``items`` (as a
    set; as a list it follows the input order).
    """
    vectors = [tuple(key(item)) for item in items]
    order = sorted(range(len(items)), key=lambda i: (vectors[i], i))
    survivors: List[int] = []
    kept = [False] * len(items)
    for index in order:
        candidate = vectors[index]
        if any(dominates(vectors[s], candidate) for s in survivors):
            continue
        survivors.append(index)
        kept[index] = True
    return [item for index, item in enumerate(items) if kept[index]]


class ParetoFront(Generic[T]):
    """An online Pareto front under minimization.

    ``add`` offers one candidate: dominated candidates are refused,
    accepted candidates evict every point they dominate.  The resulting
    set equals ``pareto_front`` over all offered candidates regardless
    of the order they arrived in — the property the explorer's
    order-invariance tests pin down.
    """

    def __init__(self, key: Callable[[T], Sequence[float]]) -> None:
        self._key = key
        self._points: List[Tuple[Vector, T]] = []
        self.offered = 0
        self.evicted = 0

    def __len__(self) -> int:
        return len(self._points)

    def add(self, item: T) -> bool:
        """Offer one candidate; ``True`` when it joins the front."""
        vector = tuple(self._key(item))
        self.offered += 1
        for existing, _ in self._points:
            if dominates(existing, vector):
                return False
        before = len(self._points)
        self._points = [
            (existing, point)
            for existing, point in self._points
            if not dominates(vector, existing)
        ]
        self.evicted += before - len(self._points)
        self._points.append((vector, item))
        return True

    def extend(self, items: Iterable[T]) -> int:
        """Offer many candidates; returns how many joined (and stayed)."""
        for item in items:
            self.add(item)
        return len(self._points)

    def points(self) -> List[T]:
        """The front in canonical order (by objective vector).

        Sorting by vector — not arrival — is what makes two sweeps that
        evaluated candidates in different orders serialize identically.
        """
        return [
            item
            for _, item in sorted(self._points, key=lambda p: p[0])
        ]

    def vectors(self) -> List[Vector]:
        """The surviving objective vectors, in canonical order."""
        return sorted(vector for vector, _ in self._points)
