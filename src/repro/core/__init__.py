"""CHOP's core: partitionings, system integration and feasibility.

This package implements the partitioner proper (sections 2.4-2.6 of the
paper): the designer's partitioning data model, the data-transfer task
graph, transfer bandwidth/time/buffer prediction, urgency scheduling of
all tasks over shared chip pins and memory ports, system-integration
prediction, and the probabilistic feasibility analysis.  The
:class:`~repro.core.chop.ChopSession` facade ties it together with the
search heuristics of :mod:`repro.search`.
"""

from repro.core.partition import Partition
from repro.core.partitioning import Partitioning
from repro.core.schemes import horizontal_cut, single_partition
from repro.core.tasks import TaskGraph, TransferTask, build_task_graph
from repro.core.transfer import TransferEstimate, DataTransferModule
from repro.core.urgency import TaskSchedule, urgency_schedule
from repro.core.integration import ChipUsage, SystemPrediction, integrate
from repro.core.feasibility import (
    FeasibilityCriteria,
    FeasibilityReport,
    evaluate_system,
    prediction_possibly_feasible,
)
from repro.core.chop import ChopSession

__all__ = [
    "Partition",
    "Partitioning",
    "horizontal_cut",
    "single_partition",
    "TaskGraph",
    "TransferTask",
    "build_task_graph",
    "TransferEstimate",
    "DataTransferModule",
    "TaskSchedule",
    "urgency_schedule",
    "ChipUsage",
    "SystemPrediction",
    "integrate",
    "FeasibilityCriteria",
    "FeasibilityReport",
    "evaluate_system",
    "prediction_possibly_feasible",
    "ChopSession",
]
