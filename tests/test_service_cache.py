"""Tests for the serving layer's cache and session registry."""

from __future__ import annotations

import threading

import pytest

from repro.errors import SpecificationError
from repro.experiments import experiment1_session
from repro.io.project import project_fingerprint, session_to_dict
from repro.service.cache import LRUCache, check_cache_key
from repro.service.sessions import SessionRegistry


def _doc(partition_count: int = 2) -> dict:
    return session_to_dict(
        experiment1_session(
            package_number=2, partition_count=partition_count
        )
    )


class TestLRUCache:
    def test_miss_then_hit(self):
        cache = LRUCache(capacity=4)
        value, hit = cache.get_or_compute("k", lambda: 41)
        assert (value, hit) == (41, False)
        value, hit = cache.get_or_compute("k", lambda: 99)
        assert (value, hit) == (41, True)
        stats = cache.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["hit_rate"] == 0.5

    def test_eviction_is_lru(self):
        cache = LRUCache(capacity=2)
        cache.get_or_compute("a", lambda: 1)
        cache.get_or_compute("b", lambda: 2)
        cache.get_or_compute("a", lambda: 0)  # refresh a
        cache.get_or_compute("c", lambda: 3)  # evicts b
        assert len(cache) == 2
        _, hit_a = cache.get_or_compute("a", lambda: 0)
        _, hit_b = cache.get_or_compute("b", lambda: 2)
        assert hit_a is True and hit_b is False

    def test_invalidate(self):
        cache = LRUCache(capacity=4)
        cache.get_or_compute("k", lambda: 1)
        assert cache.invalidate("k") is True
        assert cache.invalidate("k") is False
        _, hit = cache.get_or_compute("k", lambda: 2)
        assert hit is False

    def test_failures_are_not_cached(self):
        cache = LRUCache(capacity=4)

        def boom():
            raise RuntimeError("transient")

        with pytest.raises(RuntimeError):
            cache.get_or_compute("k", boom)
        assert len(cache) == 0
        value, hit = cache.get_or_compute("k", lambda: 7)
        assert (value, hit) == (7, False)
        assert cache.stats()["misses"] == 2

    def test_single_flight_under_concurrency(self):
        """N concurrent identical requests compute once: 1 miss, N-1 hits."""
        cache = LRUCache(capacity=4)
        computes = []
        release = threading.Event()
        started = threading.Barrier(9)  # 8 requesters + main

        def factory():
            computes.append(1)
            release.wait(5)
            return "value"

        results = []

        def worker():
            started.wait(5)
            results.append(cache.get_or_compute("hot", factory))

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        started.wait(5)  # all 8 are now racing on the same key
        release.set()
        for t in threads:
            t.join(10)
        assert len(computes) == 1
        assert all(value == "value" for value, _ in results)
        assert sum(1 for _, hit in results if not hit) == 1
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 7

    def test_check_cache_key_separates_options(self):
        fp = "a" * 64
        assert check_cache_key(fp, "iterative") != check_cache_key(
            fp, "enumeration"
        )
        assert check_cache_key(fp, "iterative", True) != check_cache_key(
            fp, "iterative", False
        )
        assert check_cache_key(fp, "iterative") != check_cache_key(
            "b" * 64, "iterative"
        )


class TestSessionRegistry:
    def test_upload_is_idempotent(self):
        registry = SessionRegistry(capacity=4)
        entry1, created1 = registry.put(_doc())
        entry2, created2 = registry.put(_doc())
        assert created1 is True and created2 is False
        assert entry1 is entry2
        assert entry1.fingerprint == project_fingerprint(_doc())
        assert entry1.project_id == entry1.fingerprint[:16]

    def test_eviction_bounds_memory(self):
        registry = SessionRegistry(capacity=1)
        entry1, _ = registry.put(_doc(partition_count=1))
        entry2, _ = registry.put(_doc(partition_count=2))
        assert entry1.project_id != entry2.project_id
        assert registry.get(entry1.project_id) is None
        assert registry.get(entry2.project_id) is entry2
        assert registry.stats()["evictions"] == 1
        assert len(registry) == 1

    def test_get_unknown_returns_none(self):
        registry = SessionRegistry(capacity=2)
        assert registry.get("nope") is None

    def test_malformed_document_raises(self):
        registry = SessionRegistry(capacity=2)
        doc = _doc()
        del doc["partitions"][0]["chip"]
        with pytest.raises(SpecificationError):
            registry.put(doc)

    def test_entry_summary(self):
        registry = SessionRegistry(capacity=2)
        entry, _ = registry.put(_doc())
        summary = entry.to_dict()
        assert summary["partitions"] == ["P1", "P2"]
        assert summary["operations"] == 28  # AR lattice filter
