"""Property-based tests for the scheduler on random graphs."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.bad.allocation import partition_resource_model
from repro.bad.scheduling import critical_path_cycles, list_schedule
from tests.strategies import dags


@given(dags(), st.integers(min_value=1, max_value=4))
@settings(max_examples=50, deadline=None)
def test_schedule_valid_under_any_allocation(graph, units):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    capacities = {cls: min(units, count) for cls, count in counts.items()}
    schedule = list_schedule(graph, duration, op_class, capacities)
    schedule.verify(graph)  # raises on precedence/resource violations


@given(dags())
@settings(max_examples=50, deadline=None)
def test_latency_bounds(graph):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    schedule = list_schedule(graph, duration, op_class, counts)
    cp = critical_path_cycles(graph, duration)
    assert cp <= schedule.latency <= sum(duration.values())
    # Unconstrained resources: latency equals the critical path.
    assert schedule.latency == cp


@given(dags(), st.integers(min_value=1, max_value=3))
@settings(max_examples=50, deadline=None)
def test_serialization_never_beats_critical_path(graph, units):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    capacities = {cls: min(units, count) for cls, count in counts.items()}
    constrained = list_schedule(graph, duration, op_class, capacities)
    unconstrained = list_schedule(graph, duration, op_class, counts)
    assert constrained.latency >= unconstrained.latency


@given(dags())
@settings(max_examples=40, deadline=None)
def test_chaining_never_increases_latency(graph):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    delays = {op_id: 50.0 for op_id in graph.operations}
    plain = list_schedule(graph, duration, op_class, counts)
    chained = list_schedule(
        graph, duration, op_class, counts,
        delay_ns=delays, cycle_ns=3000.0,
    )
    assert chained.latency <= plain.latency
    chained.verify(graph)


@given(dags(), st.integers(min_value=1, max_value=8))
@settings(max_examples=50, deadline=None)
def test_modulo_usage_conserves_work(graph, ii):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    schedule = list_schedule(graph, duration, op_class, counts)
    usage = schedule.modulo_usage(ii)
    for cls, slots in usage.items():
        assert sum(slots) == counts[cls]
