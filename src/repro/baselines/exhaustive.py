"""Exhaustive bipartition enumeration for small graphs.

Used by tests and ablation benches to verify that heuristic cuts are
close to optimal on graphs small enough to enumerate.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Set, Tuple

from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError

#: Enumeration is 2^(n-1); refuse beyond this many operations.
MAX_OPS = 18


def exhaustive_bipartitions(
    graph: DataFlowGraph,
    acyclic_only: bool = True,
) -> Iterator[Tuple[Set[str], Set[str]]]:
    """Yield every proper bipartition (A, B) of the operations.

    With ``acyclic_only`` (the default) only CHOP-valid cuts — where no
    data flows from B back to A — are yielded.  The first operation in id
    order is pinned to side A to break the A/B symmetry.
    """
    ops = sorted(graph.operations)
    if len(ops) < 2:
        raise PartitioningError("need at least two operations")
    if len(ops) > MAX_OPS:
        raise PartitioningError(
            f"{len(ops)} operations exceed the exhaustive limit of "
            f"{MAX_OPS}"
        )
    first, rest = ops[0], ops[1:]
    for size in range(0, len(rest) + 1):
        for chosen in itertools.combinations(rest, size):
            side_a = {first, *chosen}
            side_b = set(ops) - side_a
            if not side_b:
                continue
            if acyclic_only and not _one_way(graph, side_a, side_b):
                continue
            yield side_a, side_b


def _one_way(
    graph: DataFlowGraph, side_a: Set[str], side_b: Set[str]
) -> bool:
    """True when no value flows from side B into side A."""
    for op_id in side_a:
        for pred in graph.predecessors(op_id):
            if pred in side_b:
                return False
    return True
