"""Tests for the feasibility explain reports (repro.obs.explain)."""

from __future__ import annotations

from repro.experiments import experiment1_session, experiment2_session
from repro.obs import ExplainCollector


class _FakeCheck:
    def __init__(self, name, passed, probability=1.0, margin=0.0,
                 confidence=0.9):
        self.name = name
        self.passed = passed
        self.probability = probability
        self.margin = margin
        self.confidence = confidence


class _FakeReport:
    def __init__(self, checks):
        self.checks = checks
        self.feasible = all(c.passed for c in checks)


class TestCollector:
    def test_counts_and_first_blocker_attribution(self):
        collector = ExplainCollector()
        collector.record_pruned()
        collector.record_integration_infeasible()
        collector.record_report(_FakeReport([
            _FakeCheck("area:chip1", passed=False, probability=0.1,
                       margin=-50.0),
            _FakeCheck("delay", passed=False, probability=0.3,
                       margin=-2.0),
        ]))
        collector.record_report(_FakeReport([
            _FakeCheck("area:chip1", passed=True),
            _FakeCheck("delay", passed=False, probability=0.6,
                       margin=-1.0),
        ]))
        collector.record_report(_FakeReport([
            _FakeCheck("area:chip1", passed=True),
            _FakeCheck("delay", passed=True),
        ]))

        report = collector.report(combination_count=10)
        assert report.evaluated == 5
        assert report.pruned_level2 == 1
        assert report.integration_infeasible == 1
        assert report.checked == 3
        assert report.feasible == 1

        area = report.constraints["area:chip1"]
        delay = report.constraints["delay"]
        # area failed once and was the first blocker that time; delay
        # failed twice but blocked first only once.
        assert area.failures == 1 and area.first_blocker == 1
        assert delay.failures == 2 and delay.first_blocker == 1
        assert delay.min_probability == 0.3
        assert area.worst_margin == -50.0
        # Tied on first-blocker count; delay's higher failure total
        # breaks the tie.
        assert [t.name for t in report.blockers()] == [
            "delay", "area:chip1",
        ]

    def test_to_dict_is_json_shaped(self):
        import json

        collector = ExplainCollector()
        collector.record_report(_FakeReport([
            _FakeCheck("power:chip1", passed=False, probability=0.2,
                       margin=-7.5),
        ]))
        doc = collector.report(combination_count=1).to_dict()
        json.dumps(doc)  # must serialize
        assert doc["infeasible"] == 1
        assert doc["blockers"] == ["power:chip1"]
        assert doc["constraints"]["power:chip1"]["failures"] == 1


class TestSessionExplain:
    def test_explain_covers_the_whole_space(self):
        session = experiment2_session(partition_count=3)
        report = session.explain()
        # Serial walk covers every pruned combination exactly once.
        assert report.evaluated == report.combination_count > 0
        assert report.feasible > 0
        # The census matches the session's own pruning.
        kept = {
            name: len(preds)
            for name, preds in session.pruned_predictions().items()
        }
        raw = {
            name: len(preds)
            for name, preds in session.predict_all().items()
        }
        assert report.level1 == {
            name: {"predicted": raw[name], "kept": kept[name]}
            for name in kept
        }
        # Every first-blocker kill is an infeasible checked combination.
        blocked = sum(t.first_blocker for t in report.blockers())
        assert blocked == report.checked - report.feasible

    def test_explain_matches_check_verdict(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        result = session.check(heuristic="enumeration")
        report = session.explain()
        assert report.feasible == len(result.feasible)
        assert report.evaluated == result.trials

    def test_render_is_human_readable(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        text = session.explain().render()
        assert "combinations evaluated" in text
        assert "level-1 pruning" in text
        assert "kept" in text
