"""Baseline comparison: Kernighan-Lin min-cut vs constraint-driven cuts.

The paper argues (section 1.1) that minimising "sum of costs of values
cut" does not directly yield feasible multi-chip designs.  This bench
measures that: KL produces a smaller (or equal) cut than the horizontal
scheme, yet its partitions — once repaired to the acyclic form CHOP's
prediction model requires — do not beat the constraint-driven result on
the actual design constraints.
"""

from __future__ import annotations

from repro.baselines.kernighan_lin import (
    cut_bits,
    edge_weights,
    kl_bipartition,
)
from repro.baselines.repair import make_acyclic
from repro.core.partition import Partition
from repro.core.schemes import horizontal_cut
from repro.dfg.benchmarks import ar_lattice_filter
from repro.experiments import experiment1_session


def test_baseline_kl_vs_horizontal(benchmark, save_artifact):
    outcome = {}

    def run():
        graph = ar_lattice_filter()
        weights = edge_weights(graph)

        # Horizontal (constraint-driven protocol) cut.
        horizontal = horizontal_cut(graph, 2)
        h_cut = cut_bits(graph, set(horizontal[0].op_ids), weights=weights)

        # KL min-cut, repaired to one-way data flow.
        side_a, side_b, kl_cut_raw = kl_bipartition(graph)
        new_a, new_b, moved = make_acyclic(graph, side_a, side_b)
        kl_cut = cut_bits(graph, new_a, weights=weights)

        # Run both through CHOP.
        session_h = experiment1_session(2, 2)
        result_h = session_h.check("enumeration")

        session_kl = experiment1_session(2, 2)
        session_kl.set_partitions(
            [Partition.of("P1", new_a), Partition.of("P2", new_b)],
            {"P1": "chip1", "P2": "chip2"},
        )
        result_kl = session_kl.check("enumeration")

        outcome.update(
            h_cut=h_cut, kl_cut_raw=kl_cut_raw, kl_cut=kl_cut,
            moved=moved, result_h=result_h, result_kl=result_kl,
        )
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)

    best_h = outcome["result_h"].best()
    best_kl = (
        outcome["result_kl"].best()
        if outcome["result_kl"].feasible
        else None
    )
    lines = [
        f"horizontal cut: {outcome['h_cut']} bits cut, best "
        f"(II, delay) = ({best_h.ii_main}, {best_h.delay_main})",
        f"KL raw cut: {outcome['kl_cut_raw']} bits "
        f"(ignores data-flow direction)",
        f"KL repaired cut: {outcome['kl_cut']} bits after moving "
        f"{outcome['moved']} operations",
    ]
    if best_kl is None:
        lines.append("KL partitioning: no feasible implementation")
    else:
        lines.append(
            f"KL partitioning: best (II, delay) = "
            f"({best_kl.ii_main}, {best_kl.delay_main})"
        )
    save_artifact("baseline_kl_vs_chop.txt", "\n".join(lines))

    # KL optimises the cut...
    assert outcome["kl_cut_raw"] <= outcome["h_cut"]
    # ...but cut size does not transfer into constraint feasibility: the
    # constraint-driven cut is at least as good on (II, delay).
    if best_kl is not None:
        assert (best_h.ii_main, best_h.delay_main) <= (
            best_kl.ii_main, best_kl.delay_main,
        )


def test_baseline_random_cuts(benchmark, save_artifact):
    """Random level cuts: most are worse than the balanced horizontal
    cut, quantifying the value of boundary placement."""
    import random

    from repro.baselines.random_search import random_level_partitions

    outcome = {}

    def run():
        graph = ar_lattice_filter()
        rng = random.Random(1991)
        best_rows = []
        for _ in range(6):
            parts = random_level_partitions(graph, 2, rng)
            session = experiment1_session(2, 2)
            session.set_partitions(
                [
                    Partition.of("P1", parts[0]),
                    Partition.of("P2", parts[1]),
                ],
                {"P1": "chip1", "P2": "chip2"},
            )
            try:
                result = session.check("iterative")
            except Exception:
                best_rows.append(None)
                continue
            best_rows.append(
                result.best().ii_main if result.feasible else None
            )
        reference = experiment1_session(2, 2).check("iterative")
        outcome["random"] = best_rows
        outcome["reference"] = reference.best().ii_main
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = outcome["random"]
    text = (
        f"horizontal-cut best II: {outcome['reference']}\n"
        f"random-cut best IIs:    "
        f"{[r if r is not None else 'infeasible' for r in rows]}"
    )
    save_artifact("baseline_random_cuts.txt", text)
    feasible = [r for r in rows if r is not None]
    assert all(r >= outcome["reference"] for r in feasible)
