"""End-to-end auto-partitioner: validity, balance, determinism."""

from __future__ import annotations

import pytest

from repro.auto import AutoPartitionConfig, auto_partition
from repro.dfg.builders import generate_dfg
from repro.engine import EvaluationEngine
from repro.errors import PartitioningError


def _graph():
    return generate_dfg("layered", 220, seed=4)


def _run(graph, **overrides):
    defaults = dict(chips=3, clusters_per_part=6, refine_passes=4)
    defaults.update(overrides)
    return auto_partition(graph, AutoPartitionConfig(**defaults))


def test_auto_produces_a_valid_chop_partitioning():
    graph = _graph()
    result = _run(graph)
    assert set(result.assignment) == set(graph.operations)
    parts = result.partitions()
    assert len(parts) == 3
    assert all(parts), "no partition may be empty"
    # the CHOP session accepted the assignment: section 2.3 checks ran
    assert result.search is not None
    assert result.to_dict()["chips"] == 3


def test_auto_respects_the_chain_invariant_at_op_level():
    graph = _graph()
    result = _run(graph)
    for value in graph.values.values():
        if value.producer is None:
            continue
        for consumer in graph.consumers(value.id):
            assert (
                result.assignment[value.producer]
                <= result.assignment[consumer]
            )


def test_auto_balances_partitions():
    graph = _graph()
    result = _run(graph, balance_tolerance=0.3)
    sizes = [len(ops) for ops in result.partitions()]
    bound = (1 + 0.3) * graph.op_count() / 3
    assert max(sizes) <= bound + 1
    assert min(sizes) >= 1


def test_auto_is_deterministic():
    graph = _graph()
    first = _run(graph)
    second = _run(graph)
    assert first.assignment == second.assignment
    assert first.cut_bits == second.cut_bits
    assert first.to_dict() == second.to_dict()


def test_auto_matches_serial_under_process_pool_engine():
    graph = generate_dfg("chain", 90, seed=6)
    config = AutoPartitionConfig(
        chips=2, clusters_per_part=6, refine_passes=4,
        heuristic="enumeration",
    )
    serial = auto_partition(graph, config)
    engine = EvaluationEngine(workers=2, min_combinations=1)
    pooled = auto_partition(graph, config, engine=engine)
    assert pooled.assignment == serial.assignment
    assert pooled.cut_bits == serial.cut_bits
    assert pooled.feasible == serial.feasible


def test_auto_with_replication_reports_clones():
    graph = _graph()
    plain = _run(graph)
    rich = _run(graph, replicate=True)
    assert rich.replication is not None
    assert rich.transfer_bits <= plain.transfer_bits
    clone_ids = {c.clone_id for c in rich.replication.clones}
    assert clone_ids <= set(rich.assignment)


def test_auto_config_validation():
    with pytest.raises(PartitioningError):
        AutoPartitionConfig(chips=0).validate()
    with pytest.raises(PartitioningError):
        AutoPartitionConfig(chips=4, balance_tolerance=-0.5).validate()


def test_auto_rejects_more_chips_than_ops():
    graph = generate_dfg("chain", 6)
    with pytest.raises(PartitioningError):
        auto_partition(graph, AutoPartitionConfig(chips=10))


def test_auto_progress_ticks_every_stage():
    graph = generate_dfg("chain", 60, seed=1)
    seen = []

    def progress(done, total):
        seen.append((done, total))

    auto_partition(
        graph,
        AutoPartitionConfig(chips=2, replicate=True),
        progress=progress,
    )
    assert seen == [(i, 5) for i in range(1, 6)]
