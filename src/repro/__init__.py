"""repro — a reproduction of CHOP, the constraint-driven system-level
partitioner of Kucukcakar & Parker (DAC 1991).

Quickstart::

    from repro import (
        ChopSession, FeasibilityCriteria, ClockScheme, ArchitectureStyle,
        OperationTiming, ar_lattice_filter, table1_library, mosis_package,
        horizontal_cut,
    )

    session = ChopSession(
        graph=ar_lattice_filter(),
        library=table1_library(),
        clocks=ClockScheme(300.0, dp_multiplier=10),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=FeasibilityCriteria(performance_ns=30_000, delay_ns=30_000),
    )
    session.add_chip("chip1", mosis_package(2))
    session.add_chip("chip2", mosis_package(2))
    parts = horizontal_cut(session.graph, 2)
    session.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
    result = session.check(heuristic="iterative")
    for design in result.non_inferior():
        print(design.row())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record.
"""

from repro.errors import (
    ChipError,
    ChopError,
    InfeasibleError,
    LibraryError,
    PartitioningError,
    PredictionError,
    SearchCancelled,
    SpecificationError,
)
from repro.stats import ConstraintCheck, Triplet
from repro.dfg import (
    DataFlowGraph,
    GraphBuilder,
    OpType,
    Operation,
    Value,
    ar_lattice_filter,
    dct8,
    differential_equation,
    elliptic_wave_filter,
    fft_graph,
    fir_filter,
    parse_spec,
    unroll_loop,
    validate_graph,
)
from repro.library import (
    Cell,
    Component,
    ComponentLibrary,
    ModuleSet,
    extended_library,
    table1_library,
)
from repro.chips import (
    Chip,
    ChipPackage,
    PinBudget,
    mosis_package,
    mosis_packages,
    pin_budget,
)
from repro.memory import MemoryModule
from repro.bad import (
    ArchitectureStyle,
    BADPredictor,
    ClockScheme,
    DesignPrediction,
    OperationTiming,
    PredictorParameters,
)
from repro.core import (
    ChopSession,
    FeasibilityCriteria,
    FeasibilityReport,
    Partition,
    Partitioning,
    SystemPrediction,
    evaluate_system,
    horizontal_cut,
    integrate,
    single_partition,
)
from repro.search import (
    Advice,
    DesignSpace,
    FeasibleDesign,
    SearchResult,
    advise_memory_assignment,
    advise_partition_count,
    enumeration_search,
    iterative_search,
    level1_prune,
)

__version__ = "1.0.0"

__all__ = [
    # errors
    "ChopError",
    "SpecificationError",
    "LibraryError",
    "ChipError",
    "PartitioningError",
    "PredictionError",
    "SearchCancelled",
    "InfeasibleError",
    # stats
    "Triplet",
    "ConstraintCheck",
    # dfg
    "DataFlowGraph",
    "GraphBuilder",
    "OpType",
    "Operation",
    "Value",
    "ar_lattice_filter",
    "elliptic_wave_filter",
    "fir_filter",
    "differential_equation",
    "dct8",
    "fft_graph",
    "parse_spec",
    "unroll_loop",
    "validate_graph",
    # library
    "Cell",
    "Component",
    "ComponentLibrary",
    "ModuleSet",
    "table1_library",
    "extended_library",
    # chips
    "Chip",
    "ChipPackage",
    "PinBudget",
    "pin_budget",
    "mosis_package",
    "mosis_packages",
    # memory
    "MemoryModule",
    # bad
    "ArchitectureStyle",
    "BADPredictor",
    "ClockScheme",
    "DesignPrediction",
    "OperationTiming",
    "PredictorParameters",
    # core
    "ChopSession",
    "FeasibilityCriteria",
    "FeasibilityReport",
    "Partition",
    "Partitioning",
    "SystemPrediction",
    "evaluate_system",
    "horizontal_cut",
    "integrate",
    "single_partition",
    # search
    "Advice",
    "DesignSpace",
    "FeasibleDesign",
    "SearchResult",
    "advise_memory_assignment",
    "advise_partition_count",
    "enumeration_search",
    "iterative_search",
    "level1_prune",
    "__version__",
]
