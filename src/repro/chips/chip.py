"""Chips and pin budgeting.

A :class:`Chip` is a named instance of a package in the target chip set.
:class:`PinBudget` splits the package's pins into the reservation classes
of section 2.4: power/ground, control signals between distributed
controllers (per communication link), dedicated select/R-W lines (per
memory block reachable through the chip), and the remaining shareable
*data* pins over which data-transfer tasks are multiplexed.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.chips.package import ChipPackage
from repro.errors import ChipError

#: Pins reserved for supply rails on every chip.
POWER_GROUND_PINS = 4
#: Control pins per inter-chip communication link (request/acknowledge
#: between distributed controllers).
CONTROL_PINS_PER_LINK = 2
#: Dedicated, unshared pins per off-chip memory block accessed through a
#: chip: Select and R/W (the paper names exactly these two).
DEDICATED_PINS_PER_MEMORY = 2


@dataclass(frozen=True, slots=True)
class Chip:
    """One chip of the target chip set."""

    name: str
    package: ChipPackage

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} [{self.package.name}]"


@dataclass(frozen=True, slots=True)
class PinBudget:
    """Breakdown of a chip's pins into reservation classes."""

    total: int
    power_ground: int
    control: int
    memory_dedicated: int

    def __post_init__(self) -> None:
        if min(self.total, self.power_ground, self.control,
               self.memory_dedicated) < 0:
            raise ChipError("pin budget fields must be non-negative")
        if self.reserved > self.total:
            raise ChipError(
                f"pin reservations ({self.reserved}) exceed the package's "
                f"{self.total} pins"
            )

    @property
    def reserved(self) -> int:
        return self.power_ground + self.control + self.memory_dedicated

    @property
    def data(self) -> int:
        """Shareable data pins left for data-transfer tasks."""
        return self.total - self.reserved


def pin_budget(
    package: ChipPackage,
    communication_links: int,
    memory_blocks: int,
) -> PinBudget:
    """Compute the pin budget for a chip.

    ``communication_links`` counts distinct chips this chip exchanges data
    with (each link needs distributed-controller handshake pins);
    ``memory_blocks`` counts off-chip memory blocks the chip accesses
    (each needs dedicated Select and R/W pins).
    """
    if communication_links < 0 or memory_blocks < 0:
        raise ChipError("link and memory counts must be non-negative")
    return PinBudget(
        total=package.pin_count,
        power_ground=POWER_GROUND_PINS,
        control=CONTROL_PINS_PER_LINK * communication_links,
        memory_dedicated=DEDICATED_PINS_PER_MEMORY * memory_blocks,
    )
