"""The explicit-enumeration heuristic (paper section 2.4, heuristic E).

"The heuristic searches all possible combinations of implementing the
global design (partitioning), given the predicted implementations of
individual partitions ... The heuristic assumes that the performance of
each combination is upper bounded and set by the slowest partition
implementation in the combination."

Even this enumeration is a heuristic — "there are multiple ways of
integrating the partitions considered in each combination, and the
heuristic does not examine all ways": each combination is integrated once
at its slowest implementation's rate.

With pruning on, a combination is abandoned on the first violated chip
area bound before the (more expensive) system integration runs — the
paper's level-2 pruning.
"""

from __future__ import annotations

import itertools
import time
from typing import Callable, Dict, List, Mapping, Optional, Sequence

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.core.feasibility import FeasibilityCriteria, evaluate_system
from repro.core.integration import integrate
from repro.core.partitioning import Partitioning
from repro.core.tasks import build_task_graph
from repro.errors import InfeasibleError, PredictionError, SearchCancelled
from repro.library.library import ComponentLibrary
from repro.search.results import FeasibleDesign, SearchResult
from repro.search.space import DesignPoint, DesignSpace

#: Safety valve: enumeration refuses absurdly large products so a typo in
#: a prune setting cannot hang a session.
MAX_COMBINATIONS = 2_000_000


def enumeration_search(
    partitioning: Partitioning,
    predictions: Mapping[str, Sequence[DesignPrediction]],
    clocks: ClockScheme,
    library: ComponentLibrary,
    criteria: FeasibilityCriteria,
    prune: bool = True,
    keep_all: bool = False,
    cancel: Optional[Callable[[], bool]] = None,
) -> SearchResult:
    """Try every combination of per-partition implementations.

    ``predictions`` maps each partition name to its (already level-1
    pruned, unless the caller kept everything) prediction list.  With
    ``keep_all`` every visited combination lands in the returned
    :class:`DesignSpace`.  ``cancel`` is a cooperative cancellation hook
    polled between candidate combinations; when it returns ``True`` the
    search raises :class:`repro.errors.SearchCancelled`.
    """
    names = sorted(partitioning.partitions)
    missing = [n for n in names if not predictions.get(n)]
    if missing:
        raise PredictionError(
            f"no predictions for partitions: {missing}"
        )
    lists = [list(predictions[name]) for name in names]
    combination_count = 1
    for options in lists:
        combination_count *= len(options)
    if combination_count > MAX_COMBINATIONS:
        raise PredictionError(
            f"enumeration over {combination_count} combinations exceeds "
            f"the {MAX_COMBINATIONS} cap; enable level-1 pruning"
        )

    task_graph = build_task_graph(partitioning)
    usable = _usable_area_by_chip(partitioning)
    space = DesignSpace() if keep_all else None
    feasible: List[FeasibleDesign] = []
    trials = 0
    started = time.perf_counter()

    for combo in itertools.product(*lists):
        if cancel is not None and cancel():
            raise SearchCancelled(
                f"enumeration cancelled after {trials} of "
                f"{combination_count} combinations"
            )
        trials += 1
        selection = dict(zip(names, combo))
        ii_main = max(pred.ii_main for pred in combo)

        if prune and _chip_area_hopeless(partitioning, selection, usable):
            _record(space, selection, ii_main, feasible_flag=False)
            continue
        try:
            system = integrate(
                partitioning, selection, ii_main, clocks, library,
                task_graph=task_graph,
            )
        except InfeasibleError:
            _record(space, selection, ii_main, feasible_flag=False)
            continue
        report = evaluate_system(system, criteria)
        if space is not None:
            space.record(
                DesignPoint(
                    kind="system",
                    area_mil2=sum(
                        u.total_area.ml for u in system.chip_usage.values()
                    ),
                    delay_cycles=system.delay_main,
                    ii_cycles=system.ii_main,
                    feasible=report.feasible,
                )
            )
        if report.feasible:
            feasible.append(
                FeasibleDesign(
                    selection=selection, system=system, report=report
                )
            )

    return SearchResult(
        heuristic="enumeration",
        trials=trials,
        feasible=feasible,
        cpu_seconds=time.perf_counter() - started,
        space=space,
    )


def _usable_area_by_chip(partitioning: Partitioning) -> Dict[str, float]:
    """Optimistic usable area per chip (only supply pads bonded)."""
    from repro.chips.chip import POWER_GROUND_PINS

    return {
        name: chip.package.usable_area_mil2(POWER_GROUND_PINS)
        for name, chip in partitioning.chips.items()
    }


def _chip_area_hopeless(
    partitioning: Partitioning,
    selection: Mapping[str, DesignPrediction],
    usable: Mapping[str, float],
) -> bool:
    """Level-2 quick check: PU areas alone already overflow some chip.

    Uses the optimistic area lower bounds, so a ``True`` here is a proof
    of infeasibility — integration overhead only adds area.
    """
    for chip_name in partitioning.chips:
        total_lb = sum(
            selection[p].area_total.lb
            for p in partitioning.partitions_on_chip(chip_name)
        )
        if total_lb > usable[chip_name]:
            return True
    return False


def _record(
    space: Optional[DesignSpace],
    selection: Mapping[str, DesignPrediction],
    ii_main: int,
    feasible_flag: bool,
) -> None:
    if space is None:
        return
    space.record(
        DesignPoint(
            kind="system",
            area_mil2=sum(p.area_total.ml for p in selection.values()),
            delay_cycles=max(p.latency_main for p in selection.values()),
            ii_cycles=ii_main,
            feasible=feasible_flag,
        )
    )
