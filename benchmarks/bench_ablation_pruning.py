"""Ablations on the design choices DESIGN.md calls out.

* two-level pruning (the paper's central engineering claim),
* the inferior-design (dominance) filter,
* operation chaining under the single-cycle style.
"""

from __future__ import annotations

from repro.bad.predictor import BADPredictor, PredictorParameters
from repro.experiments import experiment1_session
from repro.library.presets import table1_library


def test_ablation_dominance_filter(benchmark, save_artifact):
    """Dominance filtering shrinks the search product massively without
    changing the best feasible design."""
    outcome = {}

    def run():
        session = experiment1_session(2, 2)
        with_dom = session.pruned_predictions(drop_inferior=True)
        without_dom = session.pruned_predictions(drop_inferior=False)
        outcome["with"] = {k: len(v) for k, v in with_dom.items()}
        outcome["without"] = {k: len(v) for k, v in without_dom.items()}

        from repro.search.enumeration import enumeration_search

        partitioning = session.partitioning()
        outcome["best_with"] = enumeration_search(
            partitioning, with_dom, session.clocks, session.library,
            session.criteria,
        ).best()
        outcome["best_without"] = enumeration_search(
            partitioning, without_dom, session.clocks, session.library,
            session.criteria,
        ).best()
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    product_with = 1
    product_without = 1
    for name in outcome["with"]:
        product_with *= outcome["with"][name]
        product_without *= outcome["without"][name]
    text = (
        f"level-1 survivors with dominance filter:    {outcome['with']}"
        f" -> {product_with} combinations\n"
        f"level-1 survivors without dominance filter: "
        f"{outcome['without']} -> {product_without} combinations\n"
        f"best II with:    {outcome['best_with'].ii_main}\n"
        f"best II without: {outcome['best_without'].ii_main}"
    )
    save_artifact("ablation_dominance.txt", text)
    assert product_with < product_without
    assert (
        outcome["best_with"].ii_main == outcome["best_without"].ii_main
    )


def test_ablation_chaining(benchmark, save_artifact):
    """Without chaining, the slow datapath clock wastes fast adders and
    the predicted latencies roughly double."""
    from repro.dfg.benchmarks import ar_lattice_filter
    from repro.bad.styles import (
        ArchitectureStyle, ClockScheme, OperationTiming,
    )

    graph = ar_lattice_filter()
    clocks = ClockScheme(300.0, dp_multiplier=10)
    style = ArchitectureStyle(OperationTiming.SINGLE_CYCLE)
    library = table1_library()

    outcome = {}

    def run():
        chained = BADPredictor(
            library, clocks, style,
            params=PredictorParameters(enable_chaining=True),
        ).predict_partition(graph)
        aligned = BADPredictor(
            library, clocks, style,
            params=PredictorParameters(enable_chaining=False),
        ).predict_partition(graph)
        outcome["chained"] = min(p.latency_main for p in chained)
        outcome["aligned"] = min(p.latency_main for p in aligned)
        return outcome

    benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        f"fastest predicted latency with chaining:    "
        f"{outcome['chained']} main cycles\n"
        f"fastest predicted latency without chaining: "
        f"{outcome['aligned']} main cycles"
    )
    save_artifact("ablation_chaining.txt", text)
    assert outcome["chained"] < outcome["aligned"]


def test_ablation_heuristic_trials(benchmark, save_artifact):
    """Trials and quality across both heuristics and partition counts —
    the E-vs-I trade the paper's tables expose."""
    rows = []

    def run():
        rows.clear()
        for count in (1, 2, 3):
            session = experiment1_session(2, count)
            enum = session.check("enumeration")
            iter_ = session.check("iterative")
            rows.append(
                (
                    count,
                    enum.trials, enum.best().ii_main,
                    iter_.trials, iter_.best().ii_main,
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["parts  E trials  E best II  I trials  I best II"]
    for count, et, eb, it, ib in rows:
        lines.append(
            f"{count:>5}  {et:>8}  {eb:>9}  {it:>8}  {ib:>9}"
        )
    save_artifact("ablation_heuristics_exp1.txt", "\n".join(lines))
    # In experiment 1 both heuristics reach the same best II, while the
    # iterative one explores far fewer combinations at 3 partitions.
    for count, et, eb, it, ib in rows:
        assert eb == ib
    assert rows[-1][3] < rows[-1][1]
