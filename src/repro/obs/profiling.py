"""Sampling wall-clock profiler and process resource probes.

The combination walk is pure Python, so a deterministic tracing profiler
(``cProfile``) distorts exactly the loop we want to measure.  The
:class:`SamplingProfiler` instead samples the *target thread's* stack
from a background thread at a fixed interval — a few hundred samples
locate the hot frames (integration, scheduling, the CDF arithmetic) with
negligible perturbation, and turning it off costs nothing at all.

Also home to :func:`peak_rss_bytes`, the peak-resident-set probe the
service's ``/metrics`` snapshot reports (guarded: ``resource`` does not
exist everywhere).
"""

from __future__ import annotations

import sys
import threading
import time
from collections import Counter
from typing import Any, Dict, List, Optional, Tuple

#: Default sampling period: 5 ms ≈ 200 samples/s — enough resolution for
#: searches in the hundreds of milliseconds, invisible below them.
DEFAULT_INTERVAL_S = 0.005


class SamplingProfiler:
    """Sample one thread's Python stack on a wall-clock timer.

    Usage::

        profiler = SamplingProfiler()
        with profiler:
            session.check(heuristic="enumeration")
        for frame in profiler.top(10):
            print(frame)

    Samples attribute time to every frame on the stack (inclusive time),
    keyed by ``module:function``.  The profiler targets the thread that
    enters the context manager; the sampler itself runs elsewhere and is
    excluded by construction.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"interval must be positive, got {interval_s}"
            )
        self.interval_s = interval_s
        self._counts: Counter = Counter()
        self._samples = 0
        self._elapsed_s = 0.0
        self._target_id: Optional[int] = None
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at = 0.0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def __enter__(self) -> "SamplingProfiler":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    def start(self, thread_id: Optional[int] = None) -> None:
        """Begin sampling ``thread_id`` (default: the calling thread)."""
        if self._thread is not None:
            raise RuntimeError("profiler already running")
        self._target_id = (
            thread_id if thread_id is not None else threading.get_ident()
        )
        self._stop.clear()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._sample_loop, name="chop-profiler", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stop.set()
        self._thread.join(timeout=5.0)
        self._thread = None
        self._elapsed_s += time.perf_counter() - self._started_at

    # ------------------------------------------------------------------
    # the sampler
    # ------------------------------------------------------------------
    def _sample_loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            frames = sys._current_frames()
            frame = frames.get(self._target_id)
            if frame is None:
                continue
            self._samples += 1
            seen = set()
            while frame is not None:
                code = frame.f_code
                module = code.co_filename.rsplit("/", 1)[-1]
                key = f"{module}:{code.co_name}"
                # Attribute one sample per *distinct* frame so recursion
                # cannot over-count inclusive time.
                if key not in seen:
                    seen.add(key)
                    self._counts[key] += 1
                frame = frame.f_back

    # ------------------------------------------------------------------
    # reports
    # ------------------------------------------------------------------
    @property
    def samples(self) -> int:
        return self._samples

    def top(self, limit: int = 10) -> List[Tuple[str, int, float]]:
        """The hottest frames: (``module:function``, samples, share)."""
        total = self._samples
        return [
            (key, count, round(count / total, 4) if total else 0.0)
            for key, count in self._counts.most_common(limit)
        ]

    def report(self, limit: int = 10) -> Dict[str, Any]:
        """A JSON-serializable summary (what a span attribute carries)."""
        return {
            "samples": self._samples,
            "interval_s": self.interval_s,
            "elapsed_s": round(self._elapsed_s, 6),
            "top": [
                {"frame": key, "samples": count, "share": share}
                for key, count, share in self.top(limit)
            ],
        }

    def render(self, limit: int = 10) -> str:
        """A human-readable table for the CLI's ``--profile`` flag."""
        lines = [
            f"wall-clock profile: {self._samples} samples every "
            f"{self.interval_s * 1000:g} ms over {self._elapsed_s:.3f} s",
        ]
        if not self._samples:
            lines.append(
                "  (no samples; the run finished inside one interval)"
            )
            return "\n".join(lines)
        lines.append(f"  {'share':>6}  {'samples':>7}  frame")
        for key, count, share in self.top(limit):
            lines.append(f"  {share * 100:>5.1f}%  {count:>7}  {key}")
        return "\n".join(lines)


def peak_rss_bytes() -> Optional[int]:
    """Peak resident set size of this process, or ``None`` if unknowable.

    ``resource.getrusage`` reports ``ru_maxrss`` in kilobytes on Linux
    and bytes on macOS; both are normalised to bytes here.  Platforms
    without the ``resource`` module (Windows) return ``None`` and the
    metrics snapshot simply omits the field.
    """
    try:
        import resource
    except ImportError:  # pragma: no cover — POSIX-only module
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF)
    peak = usage.ru_maxrss
    if peak <= 0:
        return None
    if sys.platform == "darwin":  # pragma: no cover — mac units
        return int(peak)
    return int(peak) * 1024
