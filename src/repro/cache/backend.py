"""The prediction cache-backend contract and its common machinery.

Prediction is the expensive half of a feasibility check (the search only
recombines predicted designs), and predictions depend on nothing but the
project inputs — so they can outlive the process.  Every backend keys
each entry on a *fingerprint-derived namespace*: the canonical
:func:`repro.io.project.project_fingerprint` of the project document
*plus* an independent digest of the resolved library and clock scheme
(belt and braces: a preset label like ``"table1"`` must not alias across
library revisions) *plus* the cache format version.  Repeated
``chop check`` runs, server restarts and — with the shared backend —
*other server processes* on an unchanged project then skip BAD
prediction entirely.

Two concrete backends implement the :class:`CacheBackend` protocol:

* :class:`repro.cache.DiskPredictionCache` — the single-writer
  directory-of-pickles backend (one process owns the directory);
* :class:`repro.cache.SharedPredictionCache` — the multi-writer backend
  safe under concurrent writers from many processes (per-entry atomic
  rename under an advisory lock, compare-digest-discard on collision,
  writer id recorded in every entry and in :meth:`stats`).

Common guarantees, enforced here in :class:`PredictionCacheBase` so both
backends share them byte for byte:

* writes are atomic (temp file + ``os.replace``) so a crashed or
  concurrent writer can never leave a torn entry;
* a reader that finds a corrupt or version-mismatched file treats it as
  a miss and *quarantines* it (renamed to ``*.corrupt`` for post-mortem,
  never read again);
* transient write errors are retried under a
  :class:`~repro.resilience.RetryPolicy` — a sick disk degrades the
  cache to a no-op, it never fails a check (:meth:`store_safely`);
* the ``$CHOP_FAULTS`` sites ``cache_store`` / ``cache_load`` /
  ``cache_store_delay`` fire at this interface layer, so fault tests
  exercise the production recovery branches of *every* backend, not one
  implementation's internals.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
import pickle
import tempfile
import threading
import time
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    Optional,
    Protocol,
    Sequence,
    Union,
    runtime_checkable,
)

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ClockScheme
from repro.library.library import ComponentLibrary
from repro.obs.metrics import get_registry
from repro.obs.tracing import span as trace_span
from repro.resilience.faults import maybe_inject
from repro.resilience.retry import RetryPolicy

#: Bump whenever the pickled payload layout or the prediction model's
#: output semantics change; every older entry becomes a miss.
CACHE_VERSION = 1


def library_clock_digest(
    library: ComponentLibrary, clocks: ClockScheme
) -> str:
    """A stable digest of the resolved library and clock scheme."""
    parts: List[str] = [library.name]
    for op_type in library.supported_op_types():
        for component in library.components_for(op_type):
            parts.append(
                f"{component.name}:{component.op_type.value}:"
                f"{component.bit_width}:{component.area_mil2!r}:"
                f"{component.delay_ns!r}"
            )
    for cell in (library.register, library.mux):
        parts.append(f"{cell.name}:{cell.area_mil2!r}:{cell.delay_ns!r}")
    parts.append(
        f"clocks:{clocks.main_cycle_ns!r}:{clocks.dp_multiplier}:"
        f"{clocks.transfer_multiplier}"
    )
    return hashlib.sha256("|".join(parts).encode("utf-8")).hexdigest()


@runtime_checkable
class CacheBackend(Protocol):
    """What the engine, eval, explore and serving layers require.

    Anything with these five methods can back the prediction cache —
    the call sites never touch backend internals, so fault injection,
    metrics and recovery semantics are properties of the interface.
    """

    def key_for(
        self,
        fingerprint: str,
        library: ComponentLibrary,
        clocks: ClockScheme,
    ) -> str:
        """Cache key for a project fingerprint under a resolved setup."""

    def load(
        self, key: str
    ) -> Optional[Dict[str, List[DesignPrediction]]]:
        """The cached per-partition prediction lists, or ``None``."""

    def store(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> None:
        """Persist the prediction lists; final write errors propagate."""

    def store_safely(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> bool:
        """Best-effort :meth:`store`; never raises on a sick disk."""

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/store counters for ``/metrics`` and the CLI."""


class PredictionCacheBase:
    """A directory of pickled per-project prediction lists.

    The shared machinery of every on-disk backend: key derivation,
    payload validation, atomic writes, corrupt-entry quarantine, retry
    of transient write errors, fault-injection sites and counters.
    Subclasses pick a ``kind`` label and may override the three hooks
    (:meth:`_payload`, :meth:`_write`, :meth:`_on_hit`) to change the
    concurrency story without touching the load/store contract.
    """

    #: Backend label reported in :meth:`stats` and selected by
    #: :func:`repro.cache.create_backend`.
    kind = "base"

    def __init__(
        self,
        directory: Union[str, pathlib.Path],
        version: int = CACHE_VERSION,
        retry_policy: Optional[RetryPolicy] = None,
    ) -> None:
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.version = version
        #: Backoff for transient write errors (``OSError``); reads are
        #: never retried — a defective entry is a miss by contract.
        self.retry_policy = retry_policy or RetryPolicy(
            max_attempts=3, base_delay_s=0.01, max_delay_s=0.2
        )
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._stores = 0
        self._invalidated = 0
        self._quarantined = 0
        self._store_retries = 0
        self._store_failures = 0
        self._op_seconds = get_registry().histogram(
            "diskcache_op_seconds",
            "Disk prediction-cache operation latency by op and outcome",
            labelnames=("op", "outcome"),
        )

    # ------------------------------------------------------------------
    # keys and paths
    # ------------------------------------------------------------------
    def key_for(
        self,
        fingerprint: str,
        library: ComponentLibrary,
        clocks: ClockScheme,
    ) -> str:
        """Cache key for a project fingerprint under a resolved setup."""
        digest = library_clock_digest(library, clocks)
        return hashlib.sha256(
            f"v{self.version}|{fingerprint}|{digest}".encode("utf-8")
        ).hexdigest()

    def path_for(self, key: str) -> pathlib.Path:
        return self.directory / f"{key}.predictions.pkl"

    # ------------------------------------------------------------------
    # load / store
    # ------------------------------------------------------------------
    def load(
        self, key: str
    ) -> Optional[Dict[str, List[DesignPrediction]]]:
        """The cached per-partition prediction lists, or ``None``.

        Any defect — missing file, unreadable pickle, version or key
        mismatch — is a miss; defective files are quarantined (renamed
        to ``*.corrupt``) so they cannot fail again, and the next store
        rewrites the entry.
        """
        started = time.perf_counter()

        def timed(outcome: str) -> None:
            self._op_seconds.labels(op="load", outcome=outcome).observe(
                time.perf_counter() - started
            )

        with trace_span("diskcache.load", key=key[:12]) as sp:
            path = self.path_for(key)
            try:
                maybe_inject("cache_load")
                with path.open("rb") as handle:
                    payload = pickle.load(handle)
            except FileNotFoundError:
                self._count(hit=False)
                sp.put("hit", False)
                timed("miss")
                return None
            except Exception:
                # Unpickling attacker-grade junk can raise nearly
                # anything (ValueError for a bad protocol byte,
                # UnpicklingError, EOFError, AttributeError, ...).  The
                # contract is uniform: any defect is a quarantined miss.
                self._discard(path)
                self._count(hit=False)
                sp.put("hit", False)
                timed("quarantined")
                return None
            if (
                not isinstance(payload, dict)
                or payload.get("version") != self.version
                or payload.get("key") != key
                or not isinstance(payload.get("predictions"), dict)
            ):
                self._discard(path)
                self._count(hit=False)
                sp.put("hit", False)
                timed("quarantined")
                return None
            self._count(hit=True)
            self._on_hit(payload)
            sp.put("hit", True)
            sp.add("partitions", len(payload["predictions"]))
            timed("hit")
            return payload["predictions"]

    def store(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> None:
        """Atomically persist the prediction lists under ``key``.

        Transient ``OSError`` s are retried with backoff under the
        cache's :class:`~repro.resilience.RetryPolicy`; the final
        failure propagates (use :meth:`store_safely` at call sites
        where a sick disk must not fail the check).
        """
        started = time.perf_counter()

        def timed(outcome: str) -> None:
            self._op_seconds.labels(op="store", outcome=outcome).observe(
                time.perf_counter() - started
            )

        with trace_span(
            "diskcache.store", key=key[:12],
        ) as sp:
            payload = self._payload(key, predictions)
            sp.add("partitions", len(payload["predictions"]))
            attempt = 0
            while True:
                attempt += 1
                try:
                    maybe_inject("cache_store_delay")
                    maybe_inject("cache_store")
                    self._write(key, payload)
                except OSError:
                    if attempt >= self.retry_policy.max_attempts:
                        with self._lock:
                            self._store_failures += 1
                        timed("failed")
                        raise
                    with self._lock:
                        self._store_retries += 1
                    sp.add("retries")
                    time.sleep(self.retry_policy.delay_for(attempt))
                    continue
                break
            with self._lock:
                self._stores += 1
            timed("ok")

    def store_safely(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> bool:
        """Best-effort :meth:`store`: swallow exhausted write errors.

        The graceful-degradation entry point for the CLI and the
        service — a cache that cannot persist degrades to a no-op
        (visible as ``store_failures`` in :meth:`stats`) instead of
        failing the feasibility check it rides on.
        """
        try:
            self.store(key, predictions)
        except OSError:
            return False
        return True

    # ------------------------------------------------------------------
    # backend hooks
    # ------------------------------------------------------------------
    def _payload(
        self,
        key: str,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> Dict[str, Any]:
        """The on-disk document for one entry (subclasses may extend)."""
        return {
            "version": self.version,
            "key": key,
            "predictions": {
                name: list(preds)
                for name, preds in sorted(predictions.items())
            },
        }

    def _write(self, key: str, payload: Dict[str, Any]) -> None:
        """One atomic temp-file + ``os.replace`` write attempt."""
        descriptor, temp_name = tempfile.mkstemp(
            prefix=".tmp-", suffix=".pkl", dir=self.directory
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(temp_name, self.path_for(key))
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise

    def _on_hit(self, payload: Dict[str, Any]) -> None:
        """Called with the validated payload of every hit (hook)."""

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _discard(self, path: pathlib.Path) -> None:
        """Quarantine a defective entry instead of deleting it.

        The rename takes the entry out of the lookup path (the next
        load is a clean miss, the next store rewrites it) while keeping
        the bytes on disk for post-mortem.  Repeated corruption of the
        same key overwrites the single quarantine file, so quarantines
        cannot accumulate unboundedly.
        """
        quarantine = path.with_name(path.name + ".corrupt")
        try:
            os.replace(path, quarantine)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass
        with self._lock:
            self._invalidated += 1
            self._quarantined += 1

    def _count(self, hit: bool) -> None:
        with self._lock:
            if hit:
                self._hits += 1
            else:
                self._misses += 1

    def stats(self) -> Dict[str, Any]:
        """Hit/miss/store counters for ``/metrics`` and the CLI."""
        with self._lock:
            total = self._hits + self._misses
            return {
                "backend": self.kind,
                "directory": str(self.directory),
                "version": self.version,
                "hits": self._hits,
                "misses": self._misses,
                "stores": self._stores,
                "invalidated": self._invalidated,
                "quarantined": self._quarantined,
                "store_retries": self._store_retries,
                "store_failures": self._store_failures,
                "hit_rate": (
                    round(self._hits / total, 4) if total else None
                ),
            }
