"""Fault-injection tests: the harness itself, then the recovery paths.

The point of ``$CHOP_FAULTS`` is that an injected fault travels the
*same* code path as the real failure it mimics (``InjectedFault`` is an
``OSError``), so these tests assert end-to-end recovery — a killed shard
is retried with backoff and the merged result is byte-identical to the
serial run; a failing cache write is retried and then succeeds; a
failing job body is re-attempted by the queue.
"""

from __future__ import annotations

import multiprocessing

import pytest

from repro.engine import DiskPredictionCache, EvaluationEngine
from repro.experiments import experiment1_session, experiment2_session
from repro.resilience import (
    FAULTS_ENV,
    FaultPlan,
    InjectedFault,
    RetryPolicy,
    RetryStats,
    active_plan,
    maybe_inject,
    reset_counters,
)
from repro.service.jobs import DONE, JobQueue


@pytest.fixture(autouse=True)
def clean_faults(monkeypatch):
    """No leftover spec or first-K tallies between tests."""
    monkeypatch.delenv(FAULTS_ENV, raising=False)
    reset_counters()
    yield
    reset_counters()


def result_doc(result):
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return doc


# ----------------------------------------------------------------------
# the harness itself
# ----------------------------------------------------------------------
class TestFaultPlan:
    def test_parses_mixed_spec(self):
        plan = FaultPlan("shard=2,cache_store=1,cache_store_delay=0.05")
        assert plan.value("shard") == 2
        assert plan.value("cache_store") == 1
        assert plan.value("cache_store_delay") == 0.05
        assert plan.value("job") is None

    def test_empty_spec_has_no_sites(self):
        assert FaultPlan("").sites == {}

    @pytest.mark.parametrize(
        "spec",
        ["bogus_site=1", "shard", "shard=x", "shard=-1", "=3"],
    )
    def test_rejects_bad_specs(self, spec):
        with pytest.raises(ValueError):
            FaultPlan(spec)

    def test_active_plan_reads_environment(self, monkeypatch):
        assert active_plan() is None
        monkeypatch.setenv(FAULTS_ENV, "job=1")
        plan = active_plan()
        assert plan is not None and plan.value("job") == 1

    def test_injected_fault_is_oserror(self):
        # Load-bearing: this is why injected faults reuse the engine's
        # and cache's real OSError recovery branches.
        assert issubclass(InjectedFault, OSError)


class TestMaybeInject:
    def test_noop_without_env(self):
        maybe_inject("cache_store")  # must not raise
        maybe_inject("shard", index=0)

    def test_counted_site_fires_first_k_only(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "cache_store=2")
        for _ in range(2):
            with pytest.raises(InjectedFault):
                maybe_inject("cache_store")
        maybe_inject("cache_store")  # third call: spent
        maybe_inject("cache_store")

    def test_counters_survive_replans(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "job=1")
        with pytest.raises(InjectedFault):
            maybe_inject("job")
        # Re-setting the same spec must not rearm a spent counter.
        monkeypatch.setenv(FAULTS_ENV, "job=1")
        maybe_inject("job")

    def test_indexed_site_matches_exact_index(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "shard=2")
        maybe_inject("shard", index=0)
        maybe_inject("shard", index=1)
        with pytest.raises(InjectedFault):
            maybe_inject("shard", index=2)
        # Indexed sites re-fire every time the index matches.
        with pytest.raises(InjectedFault):
            maybe_inject("shard", index=2)

    def test_delay_site_sleeps_instead_of_raising(self, monkeypatch):
        import time

        monkeypatch.setenv(FAULTS_ENV, "cache_store_delay=0.02")
        started = time.perf_counter()
        maybe_inject("cache_store_delay")
        assert time.perf_counter() - started >= 0.015


# ----------------------------------------------------------------------
# engine: a killed shard is retried with backoff, merge is identical
# ----------------------------------------------------------------------
class TestEngineShardRecovery:
    def test_injected_shard_fault_retried_to_identical_result(
        self, monkeypatch
    ):
        session = experiment2_session(partition_count=3)
        serial = session.check(heuristic="enumeration")

        monkeypatch.setenv(FAULTS_ENV, "shard=0")
        engine = EvaluationEngine(workers=2, min_combinations=1)
        survived = session.check(heuristic="enumeration", engine=engine)

        assert result_doc(survived) == result_doc(serial)
        stats = engine.stats()
        assert stats["shards_retried"] >= 1
        assert stats["shard_retry_attempts"] >= 1

    def test_hard_worker_exit_retried_to_identical_result(
        self, monkeypatch
    ):
        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("shard_exit needs the fork start method")
        session = experiment2_session(partition_count=3)
        serial = session.check(heuristic="enumeration")

        monkeypatch.setenv(FAULTS_ENV, "shard_exit=0")
        engine = EvaluationEngine(
            workers=2, min_combinations=1, start_method="fork"
        )
        survived = session.check(heuristic="enumeration", engine=engine)

        assert result_doc(survived) == result_doc(serial)
        assert engine.stats()["shards_retried"] >= 1

    def test_backoff_sleeps_before_serial_rerun(self, monkeypatch):
        slept = []
        import repro.engine.workers as workers_module

        monkeypatch.setattr(
            workers_module.time, "sleep", slept.append
        )
        monkeypatch.setenv(FAULTS_ENV, "shard=0")
        session = experiment2_session(partition_count=3)
        engine = EvaluationEngine(workers=2, min_combinations=1)
        session.check(heuristic="enumeration", engine=engine)
        # The dead-worker try counts as attempt 1, so the serial re-run
        # waits out the policy's first backoff delay.
        assert any(
            delay >= engine.retry_policy.base_delay_s for delay in slept
        )


# ----------------------------------------------------------------------
# prediction cache: transient write errors retried, reads degrade to a
# miss — the cache_store/cache_load fault sites live in the backend
# interface (repro.cache.backend), so every backend shares the same
# injection and recovery branches; parametrizing proves it.
# ----------------------------------------------------------------------
@pytest.fixture(params=["disk", "shared"])
def cache_cls(request):
    from repro.cache import create_backend, resolve_backend_kind

    kind = request.param
    assert resolve_backend_kind(kind) == kind

    def build(directory, **kwargs):
        return create_backend(kind, directory, **kwargs)

    return build


class TestCacheBackendFaults:
    def test_store_retries_through_injected_faults(
        self, tmp_path, monkeypatch, cache_cls
    ):
        session = experiment1_session(partition_count=2)
        cache = cache_cls(
            tmp_path,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.001, jitter=0.0
            ),
        )
        key = cache.key_for("fp", session.library, session.clocks)
        monkeypatch.setenv(FAULTS_ENV, "cache_store=2")
        cache.store(key, session.export_predictions())
        assert cache.load(key) is not None
        stats = cache.stats()
        assert stats["store_retries"] == 2
        assert stats["store_failures"] == 0

    def test_store_exhaustion_raises_and_store_safely_swallows(
        self, tmp_path, monkeypatch, cache_cls
    ):
        session = experiment1_session(partition_count=2)
        cache = cache_cls(
            tmp_path,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.001, jitter=0.0
            ),
        )
        key = cache.key_for("fp", session.library, session.clocks)
        exported = session.export_predictions()

        monkeypatch.setenv(FAULTS_ENV, "cache_store=10")
        with pytest.raises(OSError):
            cache.store(key, exported)
        assert cache.stats()["store_failures"] == 1

        reset_counters()
        monkeypatch.setenv(FAULTS_ENV, "cache_store=10")
        assert cache.store_safely(key, exported) is False
        assert cache.stats()["store_failures"] == 2

    def test_injected_read_fault_is_a_miss(
        self, tmp_path, monkeypatch, cache_cls
    ):
        session = experiment1_session(partition_count=2)
        cache = cache_cls(tmp_path)
        key = cache.key_for("fp", session.library, session.clocks)
        cache.store(key, session.export_predictions())

        monkeypatch.setenv(FAULTS_ENV, "cache_load=1")
        assert cache.load(key) is None  # fault -> degraded to a miss
        monkeypatch.delenv(FAULTS_ENV)
        # The faulted read quarantined the entry; a rewrite restores it.
        cache.store(key, session.export_predictions())
        assert cache.load(key) is not None


# ----------------------------------------------------------------------
# job queue: retryable body failures are re-attempted with backoff
# ----------------------------------------------------------------------
class TestJobRetry:
    def test_job_body_fault_retried_to_success(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "job=2")
        stats = RetryStats()
        queue = JobQueue(
            workers=1,
            retry_policy=RetryPolicy(
                max_attempts=3, base_delay_s=0.001, jitter=0.0
            ),
            retry_stats=stats,
        )
        try:
            job = queue.submit(lambda should_stop: "survived")
            finished = queue.wait(job.id, timeout=10)
            assert finished.state == DONE
            assert finished.result == "survived"
            assert finished.attempts == 3
            snap = stats.stats()
            assert snap["sites"]["job"]["retries"] == 2
            assert snap["exhausted"] == 0
        finally:
            queue.shutdown()

    def test_exhausted_job_fails_with_attempt_count(self, monkeypatch):
        monkeypatch.setenv(FAULTS_ENV, "job=10")
        stats = RetryStats()
        queue = JobQueue(
            workers=1,
            retry_policy=RetryPolicy(
                max_attempts=2, base_delay_s=0.001, jitter=0.0
            ),
            retry_stats=stats,
        )
        try:
            job = queue.submit(lambda should_stop: "never")
            finished = queue.wait(job.id, timeout=10)
            assert finished.state == "failed"
            assert finished.attempts == 2
            assert "InjectedFault" in (finished.error or "")
            assert stats.stats()["exhausted"] == 1
        finally:
            queue.shutdown()

    def test_non_retryable_failure_is_terminal_on_first_attempt(self):
        queue = JobQueue(
            workers=1, retry_policy=RetryPolicy(max_attempts=3)
        )
        try:

            def broken(should_stop):
                raise ValueError("logic bug")

            job = queue.submit(broken)
            finished = queue.wait(job.id, timeout=10)
            assert finished.state == "failed"
            assert finished.attempts == 1
        finally:
            queue.shutdown()
