"""Tests for the baseline partitioners."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.baselines.exhaustive import exhaustive_bipartitions
from repro.baselines.kernighan_lin import (
    cut_bits,
    kl_bipartition,
    recursive_bisection,
)
from repro.baselines.random_search import random_level_partitions
from repro.baselines.repair import make_acyclic
from repro.errors import PartitioningError
from tests.strategies import dags


class TestCutBits:
    def test_no_cut_when_one_side_everything(self, ar_graph):
        # cut_bits of a full side counts edges leaving it: none.
        assert cut_bits(ar_graph, set(ar_graph.operations)) == 0

    def test_counts_widths(self, tiny_graph):
        (mul_id,) = [
            o.id for o in tiny_graph if o.op_type.value == "mul"
        ]
        assert cut_bits(tiny_graph, {mul_id}) == 16

    def test_unknown_ops_rejected(self, tiny_graph):
        with pytest.raises(PartitioningError):
            cut_bits(tiny_graph, {"ghost"})


class TestKernighanLin:
    def test_preserves_sizes(self, ar_graph):
        side_a, side_b, _cut = kl_bipartition(ar_graph)
        assert len(side_a) == 14 and len(side_b) == 14
        assert side_a | side_b == set(ar_graph.operations)
        assert not side_a & side_b

    def test_never_worse_than_seed(self, ar_graph):
        ops = sorted(ar_graph.operations)
        seed = set(ops[: len(ops) // 2])
        start_cut = cut_bits(ar_graph, seed)
        _a, _b, final_cut = kl_bipartition(ar_graph, seed)
        assert final_cut <= start_cut

    def test_deterministic(self, ar_graph):
        first = kl_bipartition(ar_graph)
        second = kl_bipartition(ar_graph)
        assert first == second

    def test_small_graph_reaches_optimum(self, diffeq_graph):
        ops = sorted(diffeq_graph.operations)
        # Compare KL against every same-size bipartition.
        _a, _b, kl_cut = kl_bipartition(diffeq_graph)
        import itertools

        size = len(ops) // 2
        best = min(
            cut_bits(diffeq_graph, set(combo))
            for combo in itertools.combinations(ops, size)
        )
        assert kl_cut <= best * 2  # KL is a heuristic; allow slack
        assert kl_cut >= best

    def test_rejects_tiny_graph(self):
        from repro.dfg.builders import GraphBuilder

        b = GraphBuilder("one")
        x = b.input("x")
        y = b.add(x, x, name="y")
        b.output(y)
        g = b.build()
        with pytest.raises(PartitioningError):
            kl_bipartition(g)

    def test_rejects_bad_seed(self, ar_graph):
        with pytest.raises(PartitioningError):
            kl_bipartition(ar_graph, set())
        with pytest.raises(PartitioningError):
            kl_bipartition(ar_graph, set(ar_graph.operations))

    @given(dags(max_ops=14))
    @settings(max_examples=30, deadline=None)
    def test_kl_pass_never_increases_cut(self, graph):
        if graph.op_count() < 2:
            return
        ops = sorted(graph.operations)
        seed = set(ops[: len(ops) // 2])
        if not seed or len(seed) == len(ops):
            return
        start = cut_bits(graph, seed)
        _a, _b, final = kl_bipartition(graph, seed)
        assert final <= start


class TestRecursiveBisection:
    @pytest.mark.parametrize("count", [1, 2, 3, 4])
    def test_covers_all_ops(self, ar_graph, count):
        parts = recursive_bisection(ar_graph, count)
        assert len(parts) == count
        union = set()
        for part in parts:
            assert part
            assert not (union & part)
            union |= part
        assert union == set(ar_graph.operations)

    def test_rejects_bad_count(self, ar_graph):
        with pytest.raises(PartitioningError):
            recursive_bisection(ar_graph, 0)
        with pytest.raises(PartitioningError):
            recursive_bisection(ar_graph, 1000)


class TestRepair:
    def test_kl_cut_repairable(self, ar_graph):
        side_a, side_b, _cut = kl_bipartition(ar_graph)
        new_a, new_b, moved = make_acyclic(ar_graph, side_a, side_b)
        assert new_a | new_b == set(ar_graph.operations)
        # After repair, no value flows from B back into A.
        for op_id in new_a:
            for pred in ar_graph.predecessors(op_id):
                assert pred not in new_b

    def test_already_acyclic_untouched(self, ar_graph):
        order = ar_graph.topological_order()
        side_a = set(order[:14])
        side_b = set(order[14:])
        new_a, new_b, moved = make_acyclic(ar_graph, side_a, side_b)
        assert moved == 0

    def test_rejects_overlap(self, ar_graph):
        ops = set(ar_graph.operations)
        with pytest.raises(PartitioningError):
            make_acyclic(ar_graph, ops, ops)

    @given(dags(max_ops=16), st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=30, deadline=None)
    def test_repair_always_one_way(self, graph, seed):
        ops = sorted(graph.operations)
        if len(ops) < 3:
            return
        rng = random.Random(seed)
        side_a = set(rng.sample(ops, len(ops) // 2))
        side_b = set(ops) - side_a
        if not side_a or not side_b:
            return
        try:
            new_a, new_b, _moved = make_acyclic(graph, side_a, side_b)
        except PartitioningError:
            return  # unrepairable cuts are allowed to fail loudly
        for op_id in new_a:
            for pred in graph.predecessors(op_id):
                assert pred not in new_b


class TestRandomPartitions:
    def test_reproducible_with_seed(self, ar_graph):
        first = random_level_partitions(ar_graph, 3, random.Random(7))
        second = random_level_partitions(ar_graph, 3, random.Random(7))
        assert first == second

    def test_partitions_cover(self, ar_graph):
        parts = random_level_partitions(ar_graph, 4, random.Random(1))
        union = set()
        for part in parts:
            union |= part
        assert union == set(ar_graph.operations)

    def test_too_many_partitions_rejected(self, tiny_graph):
        with pytest.raises(PartitioningError):
            random_level_partitions(tiny_graph, 10, random.Random(0))


class TestExhaustive:
    def test_counts_acyclic_cuts(self, diffeq_graph):
        cuts = list(exhaustive_bipartitions(diffeq_graph))
        assert cuts
        # Every yielded cut is one-way.
        for side_a, side_b in cuts:
            for op_id in side_a:
                for pred in diffeq_graph.predecessors(op_id):
                    assert pred not in side_b

    def test_symmetry_broken(self, diffeq_graph):
        first_op = sorted(diffeq_graph.operations)[0]
        for side_a, _side_b in exhaustive_bipartitions(diffeq_graph):
            assert first_op in side_a

    def test_all_mode_superset(self, diffeq_graph):
        acyclic = sum(1 for _ in exhaustive_bipartitions(diffeq_graph))
        everything = sum(
            1
            for _ in exhaustive_bipartitions(
                diffeq_graph, acyclic_only=False
            )
        )
        assert everything >= acyclic

    def test_size_limit(self, ar_graph):
        with pytest.raises(PartitioningError):
            list(exhaustive_bipartitions(ar_graph))
