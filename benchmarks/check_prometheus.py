#!/usr/bin/env python
"""A minimal Prometheus text-exposition (0.0.4) linter.

CI scrapes ``GET /metrics?format=prometheus`` from a live server and
pipes the body through this checker.  It validates the structural rules
a real Prometheus scraper depends on:

* every non-comment line parses as ``name{labels} value``;
* metric names match ``[a-zA-Z_][a-zA-Z0-9_]*``;
* label values un-escape cleanly (``\\\\``, ``\\"``, ``\\n``) and
  round-trip through the renderer's own escape function;
* samples appear only under a preceding ``# TYPE`` for their family
  (histogram ``_bucket``/``_sum``/``_count`` series included);
* histogram bucket counts are cumulative (non-decreasing as ``le``
  grows) and the ``+Inf`` bucket equals the ``_count`` sample.

Usage::

    python benchmarks/check_prometheus.py METRICS.txt \
        --require chop_requests_total \
        --require-histogram chop_request_latency_seconds

Exit code 0 when the file lints clean and every required family is
present; 1 otherwise, with one line per problem.
"""

from __future__ import annotations

import argparse
import math
import re
import sys
from collections import defaultdict
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0, str(__import__("pathlib").Path(__file__).parent.parent / "src")
)

from repro.obs.prometheus import (  # noqa: E402
    escape_label_value,
    unescape_label_value,
)

NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r" (?P<value>[^ ]+)$"
)
LABEL_RE = re.compile(
    r'(?P<key>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)
TYPES = ("counter", "gauge", "histogram", "summary", "untyped")


def parse_labels(raw: str, problems: List[str], where: str) -> Dict[str, str]:
    labels: Dict[str, str] = {}
    rest = raw
    while rest:
        match = LABEL_RE.match(rest)
        if not match:
            problems.append(f"{where}: unparsable label segment {rest!r}")
            return labels
        escaped = match.group("value")
        value = unescape_label_value(escaped)
        if escape_label_value(value) != escaped:
            problems.append(
                f"{where}: label {match.group('key')} does not "
                f"round-trip the escape rules: {escaped!r}"
            )
        labels[match.group("key")] = value
        rest = rest[match.end():]
        if rest.startswith(","):
            rest = rest[1:]
        elif rest:
            problems.append(f"{where}: junk after label: {rest!r}")
            break
    return labels


def family_of(sample_name: str, types: Dict[str, str]) -> Optional[str]:
    """The declared family a sample line belongs to, if any."""
    if sample_name in types:
        return sample_name
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if types.get(base) in ("histogram", "summary"):
                return base
    return None


def lint(text: str) -> Tuple[List[str], Dict[str, str]]:
    """Returns ``(problems, {family: type})``."""
    problems: List[str] = []
    types: Dict[str, str] = {}
    # (family, labels-without-le) -> [(le, count)]
    buckets: Dict[Tuple[str, Tuple], List[Tuple[float, float]]] = (
        defaultdict(list)
    )
    counts: Dict[Tuple[str, Tuple], float] = {}

    for number, line in enumerate(text.splitlines(), start=1):
        where = f"line {number}"
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in TYPES:
                problems.append(f"{where}: malformed TYPE line: {line!r}")
                continue
            name = parts[2]
            if not NAME_RE.match(name):
                problems.append(f"{where}: bad metric name {name!r}")
            if name in types:
                problems.append(f"{where}: duplicate TYPE for {name}")
            types[name] = parts[3]
            continue
        if line.startswith("#"):
            continue  # HELP and comments
        match = SAMPLE_RE.match(line)
        if not match:
            problems.append(f"{where}: unparsable sample: {line!r}")
            continue
        name = match.group("name")
        labels = parse_labels(
            match.group("labels") or "", problems, where
        )
        try:
            value = float(match.group("value"))
        except ValueError:
            problems.append(
                f"{where}: non-numeric value {match.group('value')!r}"
            )
            continue
        family = family_of(name, types)
        if family is None:
            problems.append(
                f"{where}: sample {name} has no preceding # TYPE"
            )
            continue
        if types[family] == "histogram":
            key_labels = tuple(
                sorted(
                    (k, v) for k, v in labels.items() if k != "le"
                )
            )
            if name.endswith("_bucket"):
                le_raw = labels.get("le")
                if le_raw is None:
                    problems.append(f"{where}: bucket without le label")
                    continue
                le = (
                    math.inf if le_raw == "+Inf" else float(le_raw)
                )
                buckets[(family, key_labels)].append((le, value))
            elif name.endswith("_count"):
                counts[(family, key_labels)] = value

    for (family, key_labels), series in sorted(buckets.items()):
        ordered = sorted(series, key=lambda pair: pair[0])
        label_note = (
            "{" + ",".join(f"{k}={v}" for k, v in key_labels) + "}"
            if key_labels
            else ""
        )
        last = -math.inf
        for le, value in ordered:
            if value < last:
                problems.append(
                    f"{family}{label_note}: bucket counts not "
                    f"cumulative at le={le}"
                )
            last = value
        if not ordered or ordered[-1][0] != math.inf:
            problems.append(
                f"{family}{label_note}: histogram missing +Inf bucket"
            )
            continue
        total = counts.get((family, key_labels))
        if total is None:
            problems.append(
                f"{family}{label_note}: histogram missing _count"
            )
        elif total != ordered[-1][1]:
            problems.append(
                f"{family}{label_note}: +Inf bucket {ordered[-1][1]} "
                f"!= _count {total}"
            )
    return problems, types


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "path", help="file holding the scraped exposition text"
    )
    parser.add_argument(
        "--require", action="append", default=[], metavar="NAME",
        help="fail unless this metric family is present (repeatable)",
    )
    parser.add_argument(
        "--require-histogram", action="append", default=[],
        metavar="NAME",
        help="fail unless this family is present AND typed histogram",
    )
    args = parser.parse_args(argv)
    with open(args.path, encoding="utf-8") as handle:
        text = handle.read()
    problems, types = lint(text)
    for name in args.require:
        if name not in types:
            problems.append(f"required metric {name} is missing")
    for name in args.require_histogram:
        if types.get(name) != "histogram":
            problems.append(
                f"required histogram {name} is missing or mistyped "
                f"({types.get(name)})"
            )
    if problems:
        for problem in problems:
            print(f"FAIL {problem}")
        print(f"{len(problems)} problem(s) in {args.path}")
        return 1
    print(
        f"OK {args.path}: {len(types)} families lint clean"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
