"""Data-transfer task creation (the paper's Figure 3).

"When the information about partition and memory block assignments is
available, data transfer tasks are created by CHOP to transfer data among
partitions ... This process involves determining the manner and the
amount of data to be transferred, reserving enough pins for control
signals ... and also for other necessary signal pins which are not shared
(Select, R/W lines for memory blocks)" (section 2.4).

The task graph holds:

* one **processing-unit task** per partition,
* one **input task** per partition consuming primary inputs (system
  inputs arrive over the host chip's pins),
* one **transfer task** per (producer partition, consumer partition)
  pair whose partitions live on *different* chips (same-chip data flows
  on-die and needs no pins, only a precedence edge),
* one **output task** per partition producing primary outputs,

plus the per-chip *memory pin load*: interface pins consumed by accesses
to memory blocks not resident on the accessing chip, unavailable to
transfer tasks while the design runs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.core.partitioning import Partitioning
from repro.dfg.ops import MEMORY_OP_TYPES
from repro.errors import PartitioningError
from repro.memory.access import memory_access_profile


class TaskKind(enum.Enum):
    PROCESS = "process"
    INPUT = "input"
    TRANSFER = "transfer"
    OUTPUT = "output"


@dataclass(frozen=True, slots=True)
class TransferTask:
    """One node of the task graph.

    ``bits`` is the data volume D moved per iteration (zero for process
    tasks, whose cost comes from the selected prediction).  ``chips`` are
    the chips whose pins the task occupies — empty for process tasks,
    one chip for system input/output tasks, the source and destination
    chips for inter-chip transfers.
    """

    name: str
    kind: TaskKind
    bits: int
    chips: Tuple[str, ...]
    #: The partition a PROCESS task implements, or the producing /
    #: consuming partition of a data task (for reporting).
    partition: Optional[str] = None

    @property
    def moves_data(self) -> bool:
        return self.kind is not TaskKind.PROCESS


class TaskGraph:
    """Tasks plus precedence edges plus per-chip memory pin load."""

    def __init__(
        self,
        tasks: Dict[str, TransferTask],
        edges: List[Tuple[str, str]],
        memory_pin_loads: Dict[str, int],
    ) -> None:
        self.tasks = dict(tasks)
        self.edges = list(edges)
        self.memory_pin_loads = dict(memory_pin_loads)
        self._successors: Dict[str, List[str]] = {t: [] for t in self.tasks}
        self._predecessors: Dict[str, List[str]] = {t: [] for t in self.tasks}
        for src, dst in self.edges:
            if src not in self.tasks or dst not in self.tasks:
                raise PartitioningError(
                    f"task edge references unknown task: {src!r} -> {dst!r}"
                )
            self._successors[src].append(dst)
            self._predecessors[dst].append(src)

    def successors(self, task: str) -> List[str]:
        return list(self._successors[task])

    def predecessors(self, task: str) -> List[str]:
        return list(self._predecessors[task])

    def topological_order(self) -> List[str]:
        indegree = {t: len(self._predecessors[t]) for t in self.tasks}
        ready = sorted(t for t, d in indegree.items() if d == 0)
        order: List[str] = []
        while ready:
            task = ready.pop(0)
            order.append(task)
            fresh = []
            for succ in self._successors[task]:
                indegree[succ] -= 1
                if indegree[succ] == 0:
                    fresh.append(succ)
            ready.extend(sorted(fresh))
            ready.sort()
        if len(order) != len(self.tasks):
            raise PartitioningError("task graph contains a cycle")
        return order

    def data_tasks(self) -> List[TransferTask]:
        return [t for t in self.tasks.values() if t.moves_data]

    def process_tasks(self) -> List[TransferTask]:
        return [
            t for t in self.tasks.values() if t.kind is TaskKind.PROCESS
        ]

    def communication_links(self, chip: str) -> int:
        """Distinct partner chips this chip exchanges data with.

        System inputs and outputs count as one external partner each —
        the distributed controllers still handshake with the outside
        world.
        """
        partners: Set[str] = set()
        for task in self.tasks.values():
            if not task.moves_data or chip not in task.chips:
                continue
            if task.kind in (TaskKind.INPUT, TaskKind.OUTPUT):
                partners.add(f"__world_{task.kind.value}__")
            else:
                partners.update(c for c in task.chips if c != chip)
        return len(partners)


def build_task_graph(partitioning: Partitioning) -> TaskGraph:
    """Create the task graph of a tentative partitioning."""
    graph = partitioning.graph
    partition_of = partitioning.partition_map()
    tasks: Dict[str, TransferTask] = {}
    edges: List[Tuple[str, str]] = []

    for name in partitioning.partitions:
        tasks[f"pu:{name}"] = TransferTask(
            name=f"pu:{name}",
            kind=TaskKind.PROCESS,
            bits=0,
            chips=(),
            partition=name,
        )

    # System inputs: primary input values grouped by consuming partition.
    input_bits: Dict[str, int] = {}
    for value in graph.primary_inputs():
        consuming = {
            partition_of[c] for c in graph.consumers(value.id)
        }
        for partition in consuming:
            input_bits[partition] = input_bits.get(partition, 0) + value.width
    for partition, bits in sorted(input_bits.items()):
        name = f"in:{partition}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.INPUT,
            bits=bits,
            chips=(partitioning.chip_of(partition),),
            partition=partition,
        )
        edges.append((name, f"pu:{partition}"))

    # Inter-partition transfers from cut values.
    pair_bits: Dict[Tuple[str, str], int] = {}
    for vid, src, dests in graph.cut_values(partition_of):
        width = graph.value(vid).width
        for dst in dests:
            pair_bits[(src, dst)] = pair_bits.get((src, dst), 0) + width
    for (src, dst), bits in sorted(pair_bits.items()):
        src_chip = partitioning.chip_of(src)
        dst_chip = partitioning.chip_of(dst)
        if src_chip == dst_chip:
            edges.append((f"pu:{src}", f"pu:{dst}"))
            continue
        name = f"xfer:{src}->{dst}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.TRANSFER,
            bits=bits,
            chips=(src_chip, dst_chip),
            partition=src,
        )
        edges.append((f"pu:{src}", name))
        edges.append((name, f"pu:{dst}"))

    # System outputs: primary output values grouped by producing partition.
    output_bits: Dict[str, int] = {}
    for value in graph.primary_outputs():
        if value.producer is None:
            continue  # an input marked as output needs no computation
        partition = partition_of[value.producer]
        output_bits[partition] = output_bits.get(partition, 0) + value.width
    for partition, bits in sorted(output_bits.items()):
        name = f"out:{partition}"
        tasks[name] = TransferTask(
            name=name,
            kind=TaskKind.OUTPUT,
            bits=bits,
            chips=(partitioning.chip_of(partition),),
            partition=partition,
        )
        edges.append((f"pu:{partition}", name))

    memory_pin_loads = _memory_pin_loads(partitioning)
    return TaskGraph(tasks=tasks, edges=edges, memory_pin_loads=memory_pin_loads)


def _memory_pin_loads(partitioning: Partitioning) -> Dict[str, int]:
    """Interface pins each chip spends on non-resident memory traffic.

    Both sides of an off-chip memory access pay: the accessing chip needs
    the data+address interface toward the block, and — when the block
    lives on another *design* chip — that chip exposes the same interface.
    Off-the-shelf memory chips are outside the design, so only the
    accessing side pays.
    """
    loads: Dict[str, int] = {chip: 0 for chip in partitioning.chips}
    for chip, interfaces in memory_interfaces(partitioning).items():
        loads[chip] = sum(
            partitioning.memories[block].interface_pins()
            for block in interfaces
        )
    return loads


def memory_interfaces(partitioning: Partitioning) -> Dict[str, Set[str]]:
    """Memory blocks each chip needs an off-chip interface toward.

    A chip interfaces a block when one of its partitions accesses a
    non-resident block, or when it hosts a block accessed from another
    chip.  Each interface also costs the dedicated Select and R/W pins
    counted by :func:`repro.chips.chip.pin_budget`.
    """
    interfaces: Dict[str, Set[str]] = {
        chip: set() for chip in partitioning.chips
    }
    for name, partition in partitioning.partitions.items():
        chip = partitioning.chip_of(name)
        profile = memory_access_profile(partitioning.graph, partition.op_ids)
        if not profile.blocks:
            continue
        resident = set(partitioning.memories_on_chip(chip))
        for block in profile.blocks:
            if block in resident:
                continue
            if block not in partitioning.memories:
                raise PartitioningError(
                    f"operations access undeclared memory block {block!r}"
                )
            interfaces[chip].add(block)
            module = partitioning.memories[block]
            host = partitioning.memory_chip.get(block)
            if host is not None and not module.off_the_shelf:
                interfaces[host].add(block)
    return interfaces
