"""Feasibility explainability: *why* was a partitioning infeasible?

A CHOP verdict compresses thousands of combination evaluations into one
feasible/infeasible bit per design — useful for the iteration loop,
useless for deciding *what to change*.  The collector here rides along
an enumeration walk (``evaluate_range(collector=...)``) and aggregates,
per constraint, how many combinations that constraint killed and at what
probability margin, plus the pre-constraint kill counts (level-2 area
pruning, integration failures) and the level-1 pruning census.

The output answers the designer's actual questions: "is it chip area or
system delay?", "which chip?", "how far off is the worst case?", "would
relaxing the delay confidence to 0.7 help?".  Exposed as
:meth:`repro.core.chop.ChopSession.explain`, ``GET /jobs/{id}/explain``
on the service, and ``python -m repro.cli explain`` on the CLI.

Everything here is duck-typed against
:class:`repro.core.feasibility.FeasibilityReport` /
:class:`repro.stats.ConstraintCheck` so the obs package stays
import-light (it must never drag the model in).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


@dataclass
class ConstraintTally:
    """Aggregate outcome of one named constraint across combinations."""

    name: str
    confidence: float = 0.0
    checked: int = 0
    failures: int = 0
    #: How often this constraint was the *first* failed check of a
    #: combination — the paper-loop notion of "what killed it".
    first_blocker: int = 0
    min_probability: Optional[float] = None
    sum_probability: float = 0.0
    #: Worst (most negative) headroom seen across failures, in the
    #: constraint's own unit (mil^2, ns, mW).
    worst_margin: Optional[float] = None

    def record(self, check: Any, first_failure: bool) -> None:
        self.confidence = check.confidence
        self.checked += 1
        if check.passed:
            return
        self.failures += 1
        if first_failure:
            self.first_blocker += 1
        probability = float(check.probability)
        self.sum_probability += probability
        if (
            self.min_probability is None
            or probability < self.min_probability
        ):
            self.min_probability = probability
        margin = float(check.margin)
        if self.worst_margin is None or margin < self.worst_margin:
            self.worst_margin = margin

    def to_dict(self) -> Dict[str, Any]:
        doc: Dict[str, Any] = {
            "confidence": self.confidence,
            "checked": self.checked,
            "failures": self.failures,
            "failure_rate": (
                round(self.failures / self.checked, 4)
                if self.checked
                else 0.0
            ),
            "first_blocker": self.first_blocker,
        }
        if self.failures:
            doc["min_probability"] = round(self.min_probability or 0.0, 6)
            doc["mean_failing_probability"] = round(
                self.sum_probability / self.failures, 6
            )
            doc["worst_margin"] = round(self.worst_margin or 0.0, 3)
        return doc


class ExplainCollector:
    """Accumulates per-combination feasibility outcomes during a search.

    Handed into the evaluation loop through
    ``evaluate_range(collector=...)``; not thread-safe by design — an
    explain pass runs the serial walk (the per-combination payload would
    dwarf shard results, exactly like the ``keep_all`` figure mode).
    """

    def __init__(self) -> None:
        self.evaluated = 0
        self.pruned_level2 = 0
        self.integration_infeasible = 0
        self.checked = 0
        self.feasible = 0
        self.constraints: Dict[str, ConstraintTally] = {}

    # ------------------------------------------------------------------
    # hooks called by the evaluation loop
    # ------------------------------------------------------------------
    def record_pruned(self) -> None:
        """Level-2 kill: PU lower bounds alone overflowed some chip."""
        self.evaluated += 1
        self.pruned_level2 += 1

    def record_integration_infeasible(self) -> None:
        """Integration itself failed (no constraint ever checked)."""
        self.evaluated += 1
        self.integration_infeasible += 1

    def record_report(self, report: Any) -> None:
        """A full constraint evaluation of one combination."""
        self.evaluated += 1
        self.checked += 1
        if report.feasible:
            self.feasible += 1
        first_seen = False
        for check in report.checks:
            tally = self.constraints.get(check.name)
            if tally is None:
                tally = ConstraintTally(name=check.name)
                self.constraints[check.name] = tally
            is_first = not check.passed and not first_seen
            if is_first:
                first_seen = True
            tally.record(check, first_failure=is_first)

    # ------------------------------------------------------------------
    # the report
    # ------------------------------------------------------------------
    def report(
        self,
        combination_count: Optional[int] = None,
        level1: Optional[Dict[str, Dict[str, int]]] = None,
        heuristic: str = "enumeration",
    ) -> "ExplainReport":
        return ExplainReport(
            heuristic=heuristic,
            combination_count=(
                combination_count
                if combination_count is not None
                else self.evaluated
            ),
            evaluated=self.evaluated,
            pruned_level2=self.pruned_level2,
            integration_infeasible=self.integration_infeasible,
            checked=self.checked,
            feasible=self.feasible,
            constraints=dict(self.constraints),
            level1=dict(level1 or {}),
        )


@dataclass
class ExplainReport:
    """The structured per-check breakdown of one explain pass."""

    heuristic: str
    combination_count: int
    evaluated: int
    pruned_level2: int
    integration_infeasible: int
    checked: int
    feasible: int
    constraints: Dict[str, ConstraintTally]
    level1: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def blockers(self) -> List[ConstraintTally]:
        """Constraints ordered by how many combinations they blocked
        first, then by failure count — the designer's fix list."""
        return sorted(
            (t for t in self.constraints.values() if t.failures),
            key=lambda t: (-t.first_blocker, -t.failures, t.name),
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "heuristic": self.heuristic,
            "combination_count": self.combination_count,
            "evaluated": self.evaluated,
            "pruned_level2": self.pruned_level2,
            "integration_infeasible": self.integration_infeasible,
            "checked": self.checked,
            "feasible": self.feasible,
            "infeasible": self.evaluated - self.feasible,
            "constraints": {
                name: tally.to_dict()
                for name, tally in sorted(self.constraints.items())
            },
            "blockers": [t.name for t in self.blockers()],
            "level1": {
                name: dict(counts)
                for name, counts in sorted(self.level1.items())
            },
        }

    def render(self) -> str:
        """A terminal-friendly summary for the CLI ``explain`` command."""
        lines = [
            f"explain ({self.heuristic}): {self.evaluated} of "
            f"{self.combination_count} combinations evaluated — "
            f"{self.feasible} feasible",
        ]
        if self.level1:
            lines.append("level-1 pruning (per-partition predictions):")
            for name, counts in sorted(self.level1.items()):
                predicted = counts.get("predicted", 0)
                kept = counts.get("kept", 0)
                lines.append(
                    f"  {name}: kept {kept} of {predicted} predictions"
                )
        lines.append(
            f"level-2 area pruning killed {self.pruned_level2}; "
            f"integration failed for {self.integration_infeasible}"
        )
        blockers = self.blockers()
        if not blockers:
            lines.append(
                "no constraint failures recorded"
                + (
                    " — every checked combination was feasible"
                    if self.feasible
                    else ""
                )
            )
            return "\n".join(lines)
        lines.append(
            f"{'constraint':<18} {'killed':>7} {'failed':>7} "
            f"{'of':>7} {'need':>5} {'min P':>7} {'worst margin':>13}"
        )
        for tally in blockers:
            lines.append(
                f"{tally.name:<18} {tally.first_blocker:>7} "
                f"{tally.failures:>7} {tally.checked:>7} "
                f"{tally.confidence:>5.2f} "
                f"{(tally.min_probability or 0.0):>7.3f} "
                f"{(tally.worst_margin or 0.0):>13.1f}"
            )
        return "\n".join(lines)
