"""Tests for the DCT and FFT benchmark generators."""

from __future__ import annotations

import pytest

from repro.dfg.benchmarks_ext import dct8, fft_graph
from repro.dfg.ops import OpType
from repro.dfg.transforms import validate_graph
from repro.errors import SpecificationError


class TestDct8:
    def test_loeffler_multiplication_count(self):
        counts = dct8().op_counts_by_type()
        assert counts[OpType.MUL] == 11

    def test_eight_outputs(self):
        assert len(dct8().primary_outputs()) == 8

    def test_validates(self):
        assert validate_graph(dct8()) == []

    def test_shallow_critical_path(self):
        # Fast transforms are shallow: a handful of levels, not O(n).
        assert dct8().depth() <= 8

    def test_custom_width(self):
        graph = dct8(width=12)
        assert all(v.width == 12 for v in graph.values.values())


class TestFft:
    @pytest.mark.parametrize("points", [2, 4, 8, 16])
    def test_butterfly_count(self, points):
        import math

        graph = fft_graph(points)
        butterflies = (points // 2) * int(math.log2(points))
        # 10 operations per butterfly (4 mul + 6 add/sub).
        assert graph.op_count() == butterflies * 10
        counts = graph.op_counts_by_type()
        assert counts[OpType.MUL] == butterflies * 4

    def test_depth_logarithmic(self):
        import math

        for points in (4, 8, 16):
            graph = fft_graph(points)
            stages = int(math.log2(points))
            # Three op levels per stage (mul, combine, butterfly).
            assert graph.depth() == 3 * stages

    def test_output_count(self):
        graph = fft_graph(8)
        assert len(graph.primary_outputs()) == 16  # re+im per point

    def test_validates(self):
        assert validate_graph(fft_graph(8)) == []

    @pytest.mark.parametrize("bad", [0, 1, 3, 6, 12])
    def test_rejects_non_powers_of_two(self, bad):
        with pytest.raises(SpecificationError):
            fft_graph(bad)

    def test_partitionable_through_chop(self):
        """The FFT runs end-to-end through a session (scaling check)."""
        from repro.bad.styles import (
            ArchitectureStyle, ClockScheme, OperationTiming,
        )
        from repro.chips.presets import mosis_package
        from repro.core.chop import ChopSession
        from repro.core.feasibility import FeasibilityCriteria
        from repro.core.schemes import horizontal_cut
        from repro.library.presets import extended_library

        graph = fft_graph(4)
        session = ChopSession(
            graph=graph,
            library=extended_library(),
            clocks=ClockScheme(300.0),
            style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=100_000.0, delay_ns=150_000.0
            ),
        )
        parts = horizontal_cut(graph, 2)
        session.add_chip("chip1", mosis_package(2))
        session.add_chip("chip2", mosis_package(2))
        session.set_partitions(
            parts, {"P1": "chip1", "P2": "chip2"}
        )
        result = session.check("iterative")
        assert result.trials > 0
