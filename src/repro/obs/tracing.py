"""Span-based tracing for the whole CHOP stack.

One designer action — a CLI check, a service job — becomes one *trace*:
a tree of timed *spans* (session → search → engine run → shards → merge)
each carrying wall-clock bounds, a status, free-form attributes and
numeric counters (combinations evaluated, prune kills, cache hits).

Design constraints, in order:

* **Zero cost when off.**  Instrumentation sites call the module-level
  :func:`span` helper, which reads one :mod:`contextvars` variable and
  hands back a shared no-op context manager when no tracer is active —
  hot loops never pay for tracing they did not ask for (the bench gate
  is <2% overhead on ``bench_parallel.py``).
* **Thread safety by construction.**  The active tracer/span pair lives
  in a context variable, so concurrent service jobs and request threads
  each see their own span stack; the tracer's finished-span buffer and
  sink are lock-protected.
* **Process safety by shipping.**  Worker processes cannot append to the
  parent's tracer, so the engine hands each shard task its trace id,
  workers build their span *records* locally (with span ids derived
  deterministically from the trace id and shard index), and the records
  travel back inside the shard results to be re-parented under the
  engine's run span on merge — the tree is identical no matter which
  worker ran which shard, or whether the pool ran at all.

Finished spans are JSON records (one per line in a
:class:`JsonlSink`-backed trace file); the schema is documented in
``docs/observability.md`` and validated by :mod:`repro.obs.schema`.
"""

from __future__ import annotations

import contextvars
import hashlib
import json
import os
import threading
import time
import uuid
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import SearchCancelled

#: Bumped whenever a span record gains, loses or re-types a field; the
#: schema checker refuses records from other versions.
TRACE_SCHEMA_VERSION = 1

#: Spans retained in a tracer's in-memory buffer.  A trace is one
#: designer action, so this is generous; the bound only protects a
#: long-lived service from a pathological span storm.
MAX_BUFFERED_SPANS = 50_000

OK = "ok"
ERROR = "error"
CANCELLED = "cancelled"


def new_trace_id() -> str:
    """A fresh 32-hex-char trace id."""
    return uuid.uuid4().hex


def new_span_id() -> str:
    """A fresh 16-hex-char span id."""
    return uuid.uuid4().hex[:16]


def deterministic_span_id(*parts: Any) -> str:
    """A span id derived from stable inputs (trace id, shard index, ...).

    Worker processes use this so a shard's span id is a pure function of
    the trace and the shard — reruns and retries collide on purpose,
    and the merged tree is reproducible.
    """
    joined = "/".join(str(part) for part in parts)
    return hashlib.sha256(joined.encode("utf-8")).hexdigest()[:16]


def make_span_record(
    trace_id: str,
    span_id: str,
    parent_id: Optional[str],
    name: str,
    start_s: float,
    end_s: float,
    status: str = OK,
    counters: Optional[Dict[str, Any]] = None,
    attrs: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """One finished-span JSON record (the only record shape we emit)."""
    return {
        "schema": TRACE_SCHEMA_VERSION,
        "trace_id": trace_id,
        "span_id": span_id,
        "parent_id": parent_id,
        "name": name,
        "start_s": start_s,
        "end_s": end_s,
        "elapsed_s": max(0.0, end_s - start_s),
        "status": status,
        "counters": dict(counters or {}),
        "attrs": dict(attrs or {}),
        "pid": os.getpid(),
    }


class Span:
    """One in-flight span.  Mutate through :meth:`add` and :meth:`put`."""

    __slots__ = (
        "trace_id", "span_id", "parent_id", "name",
        "start_s", "counters", "attrs",
    )

    def __init__(
        self,
        trace_id: str,
        span_id: str,
        parent_id: Optional[str],
        name: str,
        **attrs: Any,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_s = time.time()
        self.counters: Dict[str, Any] = {}
        self.attrs: Dict[str, Any] = dict(attrs)

    def add(self, counter: str, amount: int = 1) -> None:
        """Increment a numeric counter on this span."""
        self.counters[counter] = self.counters.get(counter, 0) + amount

    def put(self, key: str, value: Any) -> None:
        """Set a free-form (JSON-serializable) attribute."""
        self.attrs[key] = value

    def __bool__(self) -> bool:
        return True


class _NullSpan:
    """Absorbs instrumentation when tracing is off; always falsy.

    ``counters`` is ``None`` so hot loops can hand ``sp.counters``
    straight to ``evaluate_range(counters=...)`` and pay nothing when
    tracing is off.
    """

    __slots__ = ()
    trace_id: Optional[str] = None
    span_id: Optional[str] = None
    parent_id: Optional[str] = None
    counters: Optional[Dict[str, Any]] = None

    def add(self, counter: str, amount: int = 1) -> None:
        pass

    def put(self, key: str, value: Any) -> None:
        pass

    def __bool__(self) -> bool:
        return False


NULL_SPAN = _NullSpan()


class _NullSpanContext:
    """Reusable, stateless no-op context manager yielding the null span."""

    __slots__ = ()

    def __enter__(self) -> _NullSpan:
        return NULL_SPAN

    def __exit__(self, *exc_info: Any) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()

#: (tracer, active span id) for the current thread/task, or ``None``.
_ACTIVE: "contextvars.ContextVar[Optional[Tuple[Tracer, Optional[str]]]]"
_ACTIVE = contextvars.ContextVar("chop_obs_active", default=None)


def current_tracer() -> Optional["Tracer"]:
    """The tracer installed by :func:`activate`, if any."""
    state = _ACTIVE.get()
    return state[0] if state is not None else None


def current_span_id() -> Optional[str]:
    """The id of the innermost open span, if tracing is active."""
    state = _ACTIVE.get()
    return state[1] if state is not None else None


def span(name: str, **attrs: Any):
    """Open a child span on the active tracer — or do nothing.

    The universal instrumentation entry point::

        with span("search.enumeration", prune=True) as sp:
            sp.add("combinations", trials)   # no-op when tracing is off

    ``sp`` is falsy when no tracer is active, so hot paths can guard
    optional work with ``if sp:``.
    """
    state = _ACTIVE.get()
    if state is None:
        return _NULL_CONTEXT
    return state[0].span(name, **attrs)


class activate:
    """Install ``tracer`` as the current context's tracer.

    Re-entrant per thread/task through context variables; the previous
    state (usually none) is restored on exit.  Usable as a context
    manager only — spans opened inside nest under it automatically.
    """

    __slots__ = ("tracer", "_token")

    def __init__(self, tracer: "Tracer") -> None:
        self.tracer = tracer
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> "Tracer":
        self._token = _ACTIVE.set((self.tracer, None))
        return self.tracer

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None


class _SpanContext:
    """Context manager for one real span; sets/restores the active id."""

    __slots__ = ("_tracer", "_span", "_token")

    def __init__(self, tracer: "Tracer", span_obj: Span) -> None:
        self._tracer = tracer
        self._span = span_obj
        self._token: Optional[contextvars.Token] = None

    def __enter__(self) -> Span:
        self._token = _ACTIVE.set((self._tracer, self._span.span_id))
        return self._span

    def __exit__(self, exc_type: Any, exc: Any, tb: Any) -> None:
        if self._token is not None:
            _ACTIVE.reset(self._token)
            self._token = None
        if exc_type is None:
            status = OK
        elif isinstance(exc, SearchCancelled):
            status = CANCELLED
        else:
            status = ERROR
            self._span.put("error", f"{exc_type.__name__}: {exc}")
        self._tracer.finish(self._span, status=status)
        return None  # never swallow the exception


class JsonlSink:
    """Appends one JSON line per finished span to a file, under a lock."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = open(path, "a", encoding="utf-8")

    def write_span(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class Tracer:
    """One trace: an id, a span buffer, and an optional JSONL sink.

    Thread-safe; share one tracer across the threads of a single
    designer action (the service does exactly that per job).  Worker
    *processes* never see the tracer — they ship span records back (see
    the module docstring) and the engine replays them through
    :meth:`emit`.
    """

    def __init__(
        self,
        trace_id: Optional[str] = None,
        sink: Optional[JsonlSink] = None,
    ) -> None:
        self.trace_id = trace_id or new_trace_id()
        self.sink = sink
        self._lock = threading.Lock()
        self._finished: List[Dict[str, Any]] = []
        self._dropped = 0

    # ------------------------------------------------------------------
    # span lifecycle
    # ------------------------------------------------------------------
    def span(self, name: str, **attrs: Any) -> _SpanContext:
        """Open a span as a child of the current context's span."""
        span_obj = Span(
            trace_id=self.trace_id,
            span_id=new_span_id(),
            parent_id=current_span_id(),
            name=name,
            **attrs,
        )
        return _SpanContext(self, span_obj)

    def finish(self, span_obj: Span, status: str = OK) -> None:
        """Close a span and buffer/sink its record."""
        self.emit(
            make_span_record(
                trace_id=span_obj.trace_id,
                span_id=span_obj.span_id,
                parent_id=span_obj.parent_id,
                name=span_obj.name,
                start_s=span_obj.start_s,
                end_s=time.time(),
                status=status,
                counters=span_obj.counters,
                attrs=span_obj.attrs,
            )
        )

    def emit(self, record: Dict[str, Any]) -> None:
        """Record an already-finished span (own, or shipped from a worker)."""
        with self._lock:
            if len(self._finished) < MAX_BUFFERED_SPANS:
                self._finished.append(record)
            else:
                self._dropped += 1
        if self.sink is not None:
            self.sink.write_span(record)

    # ------------------------------------------------------------------
    # reading the trace back
    # ------------------------------------------------------------------
    def spans(self) -> List[Dict[str, Any]]:
        """Finished span records, ordered by start time (a copy)."""
        with self._lock:
            records = list(self._finished)
        return sorted(records, key=lambda r: (r["start_s"], r["span_id"]))

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            return {
                "trace_id": self.trace_id,
                "spans": len(self._finished),
                "dropped": self._dropped,
            }

    def close(self) -> None:
        if self.sink is not None:
            self.sink.close()


def load_trace_file(path: str) -> List[Dict[str, Any]]:
    """Parse a JSONL trace file into span records (blank lines skipped)."""
    spans: List[Dict[str, Any]] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{line_no}: not valid JSON: {exc}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_no}: span record must be an object"
                )
            spans.append(record)
    return spans
