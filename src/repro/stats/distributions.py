"""Probabilistic interpretation of prediction triplets.

A triplet (lb, ml, ub) is interpreted as a triangular distribution with
mode ``ml`` on support [lb, ub] — the standard three-point-estimate model.
The feasibility analysis of the paper (section 2.6) asks questions of the
form "what is the probability this predicted quantity satisfies its
constraint?", answered here by :func:`prob_le` / :func:`prob_ge`.

Sums of many triplets (e.g. total chip area = partitions + transfer
modules + pin multiplexing) are closer to normal than triangular; callers
that sum first and ask once get the triangular answer on the summed
triplet, which is the conservative bound-wise composition the paper's
environment uses.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.stats.triplet import Triplet


def triangular_cdf(x: float, lb: float, ml: float, ub: float) -> float:
    """CDF of the triangular distribution with mode ``ml`` on [lb, ub].

    Degenerate supports (lb == ub) give a step function at the point mass.
    """
    if not (lb <= ml <= ub):
        raise ValueError(f"invalid triangular parameters: {lb}, {ml}, {ub}")
    if lb == ub:
        return 1.0 if x >= lb else 0.0
    if x <= lb:
        return 0.0
    if x >= ub:
        return 1.0
    # Each factor below is a ratio in [0, 1]; multiplying the ratios
    # (rather than dividing a squared numerator by a product of spans)
    # keeps subnormal supports from underflowing the denominator to 0.
    span = ub - lb
    if x < ml:
        left = ml - lb
        if left == 0.0:
            # Mode at the lower edge: density is linear decreasing.
            return 1.0 - ((ub - x) / span) * ((ub - x) / (ub - ml))
        return ((x - lb) / span) * ((x - lb) / left)
    right = ub - ml
    if right == 0.0:
        return ((x - lb) / span) * ((x - lb) / (ml - lb))
    return 1.0 - ((ub - x) / span) * ((ub - x) / right)


def triangular_mean(lb: float, ml: float, ub: float) -> float:
    """Mean of the triangular distribution."""
    return (lb + ml + ub) / 3.0


def triangular_variance(lb: float, ml: float, ub: float) -> float:
    """Variance of the triangular distribution."""
    return (lb * lb + ml * ml + ub * ub - lb * ml - lb * ub - ml * ub) / 18.0


def prob_le(value: Triplet, limit: float) -> float:
    """Probability that the triplet-valued quantity is at most ``limit``."""
    return triangular_cdf(float(limit), value.lb, value.ml, value.ub)


def prob_ge(value: Triplet, limit: float) -> float:
    """Probability that the triplet-valued quantity is at least ``limit``."""
    return 1.0 - prob_le(value, math.nextafter(float(limit), -math.inf))


@dataclass(frozen=True, slots=True)
class ConstraintCheck:
    """Outcome of checking one triplet-valued quantity against a bound.

    ``confidence`` is the probability required for the check to pass (the
    paper uses 1.0 for performance and chip area, 0.8 for system delay).
    """

    name: str
    value: Triplet
    limit: float
    confidence: float
    probability: float

    @staticmethod
    def upper_bound(
        name: str, value: Triplet, limit: float, confidence: float
    ) -> "ConstraintCheck":
        """Check ``value <= limit`` with the required confidence."""
        if not (0.0 <= confidence <= 1.0):
            raise ValueError(f"confidence must be in [0, 1], got {confidence}")
        return ConstraintCheck(
            name=name,
            value=value,
            limit=float(limit),
            confidence=confidence,
            probability=prob_le(value, limit),
        )

    @property
    def passed(self) -> bool:
        # A tolerance absorbs float noise from the CDF arithmetic; a
        # requirement of 1.0 still genuinely demands ub <= limit because
        # the CDF only reaches ~1 at the upper bound.
        return self.probability >= self.confidence - 1e-12

    @property
    def margin(self) -> float:
        """How much headroom (positive) or violation (negative) remains."""
        return self.limit - self.value.ml

    def __str__(self) -> str:
        state = "ok" if self.passed else "VIOLATED"
        return (
            f"{self.name}: P({self.value} <= {self.limit:g}) = "
            f"{self.probability:.3f} (need {self.confidence:.2f}) -> {state}"
        )
