"""Retry policies: exponential backoff with jitter and a retry ledger.

Every transient-failure site in the system — the engine's crashed-shard
path, disk-cache writes, service job bodies — retries through one
:class:`RetryPolicy` so backoff behavior, exception classification and
accounting are uniform.  The policy is immutable and thread-safe; the
mutable tallies live in a :class:`RetryStats` ledger that subsystems
register as a ``/metrics`` gauge block.

Determinism matters more here than spread: tests drive policies with
``jitter=0`` (pure exponential) or an injected ``rng``, and production
sites use a small multiplicative jitter so a herd of simultaneous
failures does not retry in lockstep.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.obs.tracing import span as trace_span


@dataclass(frozen=True)
class RetryPolicy:
    """How often, how long, and for which exceptions to retry.

    ``max_attempts`` counts the first try: ``3`` means one call and up
    to two retries.  The delay before retry *n* (1-based) is
    ``base_delay_s * multiplier**(n-1)`` capped at ``max_delay_s``, then
    widened by up to ``jitter`` (a fraction — ``0.1`` adds 0..10%).
    ``retryable`` classifies exceptions: anything else propagates
    immediately, attempts be damned.
    """

    max_attempts: int = 3
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    multiplier: float = 2.0
    jitter: float = 0.1
    retryable: Tuple[Type[BaseException], ...] = (OSError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("delays must be non-negative")
        if self.multiplier < 1.0:
            raise ValueError(
                f"multiplier must be >= 1, got {self.multiplier}"
            )
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(
                f"jitter must be in [0, 1], got {self.jitter}"
            )

    def is_retryable(self, exc: BaseException) -> bool:
        """Whether this failure is worth another attempt."""
        return isinstance(exc, self.retryable)

    def delay_for(
        self,
        attempt: int,
        rng: Optional[random.Random] = None,
    ) -> float:
        """Backoff before retrying after failed attempt ``attempt``."""
        if attempt < 1:
            raise ValueError(f"attempt is 1-based, got {attempt}")
        delay = min(
            self.base_delay_s * self.multiplier ** (attempt - 1),
            self.max_delay_s,
        )
        if self.jitter > 0:
            draw = (rng or random).random()
            delay *= 1.0 + self.jitter * draw
        return delay

    def call(
        self,
        fn: Callable[[], Any],
        site: str = "call",
        sleep: Callable[[float], None] = time.sleep,
        stats: Optional["RetryStats"] = None,
        rng: Optional[random.Random] = None,
    ) -> Any:
        """Run ``fn`` under this policy; return its result.

        Non-retryable exceptions and the final retryable failure
        propagate unchanged.  The whole attempt loop runs inside a
        ``retry.<site>`` span whose counters carry ``attempts`` and
        ``retries``, so traced runs show exactly how hard a site fought.
        """
        with trace_span(f"retry.{site}", max_attempts=self.max_attempts) as sp:
            for attempt in range(1, self.max_attempts + 1):
                try:
                    result = fn()
                except BaseException as exc:
                    retryable = (
                        self.is_retryable(exc)
                        and attempt < self.max_attempts
                    )
                    if not retryable:
                        sp.add("attempts", attempt)
                        if stats is not None:
                            stats.record(site, attempt, exhausted=True)
                        raise
                    sp.add("retries")
                    sleep(self.delay_for(attempt, rng=rng))
                else:
                    sp.add("attempts", attempt)
                    if stats is not None:
                        stats.record(site, attempt, exhausted=False)
                    return result
        raise AssertionError("unreachable")  # pragma: no cover


@dataclass
class RetryStats:
    """A thread-safe ledger of retry activity across sites.

    One ledger typically serves a whole subsystem (the service holds
    one and registers :meth:`stats` as the ``retries`` gauge block);
    ``record`` is what :meth:`RetryPolicy.call` and the hand-rolled
    retry loops feed.
    """

    _lock: threading.Lock = field(default_factory=threading.Lock)
    _calls: int = 0
    _retries: int = 0
    _exhausted: int = 0
    _by_site: Dict[str, Dict[str, int]] = field(default_factory=dict)

    def record(self, site: str, attempts: int, exhausted: bool) -> None:
        """Account one completed attempt loop (``attempts`` >= 1)."""
        with self._lock:
            self._calls += 1
            self._retries += max(0, attempts - 1)
            if exhausted:
                self._exhausted += 1
            entry = self._by_site.setdefault(
                site, {"calls": 0, "retries": 0, "exhausted": 0}
            )
            entry["calls"] += 1
            entry["retries"] += max(0, attempts - 1)
            if exhausted:
                entry["exhausted"] += 1

    def stats(self) -> Dict[str, Any]:
        """Snapshot for ``/metrics`` (totals plus per-site tallies)."""
        with self._lock:
            return {
                "calls": self._calls,
                "retries": self._retries,
                "exhausted": self._exhausted,
                "sites": {
                    site: dict(entry)
                    for site, entry in sorted(self._by_site.items())
                },
            }
