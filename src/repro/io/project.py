"""Whole-project (designer session) serialization.

A *project* document carries the paper's six input groups:

.. code-block:: json

    {
      "graph": { ... as repro.io.graphs ... },
      "library": "table1",
      "clocks": {"main_ns": 300.0, "dp_multiplier": 10,
                 "transfer_multiplier": 1},
      "style": {"timing": "single-cycle", "pipelined": true,
                "nonpipelined": true},
      "criteria": {"performance_ns": 30000, "delay_ns": 30000,
                   "delay_confidence": 0.8},
      "chips": [{"name": "chip1", "package": 2}],
      "memories": [{"name": "M", "words": 256, "width_bits": 16,
                    "chip": "chip1"}],
      "partitions": [{"name": "P1", "ops": ["mul1", ...],
                      "chip": "chip1"}]
    }

``library`` is ``"table1"``, ``"extended"`` or an inline component list;
``package`` is a Table 2 number or an inline package object.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, List, Union

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.package import ChipPackage
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partition import Partition
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.io.graphs import graph_from_dict, graph_to_dict
from repro.library.component import Cell, Component
from repro.library.library import ComponentLibrary
from repro.library.presets import extended_library, table1_library
from repro.memory.module import MemoryModule


# ----------------------------------------------------------------------
# loading
# ----------------------------------------------------------------------
def load_project(data: Dict[str, Any]) -> ChopSession:
    """Build a ready-to-check session from a project document.

    Any structural problem — a missing key, a wrong type, an unparsable
    number — raises :class:`SpecificationError`, so callers (the CLI and
    the serving layer) can map every bad document to one clean error.
    """
    if not isinstance(data, dict):
        raise SpecificationError(
            f"malformed project document: expected an object, got "
            f"{type(data).__name__}"
        )
    try:
        return _load_project_strict(data)
    except (KeyError, TypeError, ValueError, AttributeError) as exc:
        raise SpecificationError(
            f"malformed project document: "
            f"{type(exc).__name__}: {exc}"
        ) from None


def _load_project_strict(data: Dict[str, Any]) -> ChopSession:
    graph = graph_from_dict(data["graph"])
    clocks_doc = data["clocks"]
    criteria_doc = data["criteria"]
    chip_docs = data["chips"]
    partition_docs = data["partitions"]

    session = ChopSession(
        graph=graph,
        library=_library_from(data.get("library", "table1")),
        clocks=ClockScheme(
            main_cycle_ns=float(clocks_doc["main_ns"]),
            dp_multiplier=int(clocks_doc.get("dp_multiplier", 1)),
            transfer_multiplier=int(
                clocks_doc.get("transfer_multiplier", 1)
            ),
        ),
        style=_style_from(data.get("style", {})),
        criteria=_criteria_from(criteria_doc),
        memories=[_memory_from(m) for m in data.get("memories", ())],
    )
    for chip_doc in chip_docs:
        session.add_chip(
            chip_doc["name"], _package_from(chip_doc["package"])
        )
    for memory_doc in data.get("memories", ()):
        chip = memory_doc.get("chip")
        if chip is not None:
            session.assign_memory(memory_doc["name"], chip)
    partitions: List[Partition] = []
    assignment: Dict[str, str] = {}
    for doc in partition_docs:
        partitions.append(Partition.of(doc["name"], doc["ops"]))
        assignment[doc["name"]] = doc["chip"]
    session.set_partitions(partitions, assignment)
    return session


def load_project_file(path: Union[str, pathlib.Path]) -> ChopSession:
    """Load a project from a JSON file."""
    text = pathlib.Path(path).read_text()
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SpecificationError(f"invalid project JSON: {exc}") from None
    return load_project(data)


# ----------------------------------------------------------------------
# fingerprinting
# ----------------------------------------------------------------------
def canonical_project_bytes(data: Dict[str, Any]) -> bytes:
    """Canonical byte encoding of a project document.

    Key order, whitespace and (for partitions) operation-list order are
    normalized so that two documents describing the same session encode
    identically regardless of how they were written.
    """
    normalized = dict(data)
    partitions = normalized.get("partitions")
    if isinstance(partitions, list):
        normalized["partitions"] = [
            {**doc, "ops": sorted(doc["ops"])}
            if isinstance(doc, dict) and isinstance(doc.get("ops"), list)
            else doc
            for doc in partitions
        ]
    return json.dumps(
        normalized, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def project_fingerprint(data: Dict[str, Any]) -> str:
    """Stable SHA-256 hex digest of the canonicalized document.

    The serving layer keys its prediction/verdict caches on this, and
    ``export-demo`` stamps it on its output for provenance.
    """
    return hashlib.sha256(canonical_project_bytes(data)).hexdigest()


# ----------------------------------------------------------------------
# saving
# ----------------------------------------------------------------------
def session_to_dict(session: ChopSession) -> Dict[str, Any]:
    """Serialise a session back into the project schema."""
    partitioning = session.partitioning()
    return {
        "graph": graph_to_dict(session.graph),
        "library": _library_to(session.library),
        "clocks": {
            "main_ns": session.clocks.main_cycle_ns,
            "dp_multiplier": session.clocks.dp_multiplier,
            "transfer_multiplier": session.clocks.transfer_multiplier,
        },
        "style": {
            "timing": session.style.timing.value,
            "pipelined": session.style.allow_pipelined,
            "nonpipelined": session.style.allow_nonpipelined,
        },
        "criteria": {
            "performance_ns": session.criteria.performance_ns,
            "delay_ns": session.criteria.delay_ns,
            "performance_confidence":
                session.criteria.performance_confidence,
            "area_confidence": session.criteria.area_confidence,
            "delay_confidence": session.criteria.delay_confidence,
            "system_power_mw": session.criteria.system_power_mw,
            "chip_power_mw": session.criteria.chip_power_mw,
            "power_confidence": session.criteria.power_confidence,
        },
        "chips": [
            {
                "name": chip.name,
                "package": {
                    "name": chip.package.name,
                    "width_mil": chip.package.width_mil,
                    "height_mil": chip.package.height_mil,
                    "pin_count": chip.package.pin_count,
                    "pad_delay_ns": chip.package.pad_delay_ns,
                    "pad_area_mil2": chip.package.pad_area_mil2,
                },
            }
            for chip in session.chips.values()
        ],
        "memories": [
            {
                "name": module.name,
                "words": module.words,
                "width_bits": module.width_bits,
                "ports": module.ports,
                "access_time_ns": module.access_time_ns,
                "area_per_bit_mil2": module.area_per_bit_mil2,
                "off_the_shelf": module.off_the_shelf,
                "chip": session.memory_chip.get(module.name),
            }
            for module in session.memories.values()
        ],
        "partitions": [
            {
                "name": name,
                "ops": sorted(partition.op_ids),
                "chip": partitioning.chip_of(name),
            }
            for name, partition in sorted(
                partitioning.partitions.items()
            )
        ],
    }


def save_project_file(
    session: ChopSession, path: Union[str, pathlib.Path]
) -> None:
    """Write a session to a JSON project file."""
    pathlib.Path(path).write_text(
        json.dumps(session_to_dict(session), indent=2) + "\n"
    )


# ----------------------------------------------------------------------
# piece converters
# ----------------------------------------------------------------------
def _library_from(doc: Any) -> ComponentLibrary:
    if doc == "table1":
        return table1_library()
    if doc == "extended":
        return extended_library()
    if not isinstance(doc, dict):
        raise SpecificationError(
            f"library must be 'table1', 'extended' or an object, got "
            f"{doc!r}"
        )
    components = [
        Component(
            name=c["name"],
            op_type=OpType(c["type"]),
            bit_width=int(c["bit_width"]),
            area_mil2=float(c["area_mil2"]),
            delay_ns=float(c["delay_ns"]),
        )
        for c in doc["components"]
    ]
    register = Cell(
        doc["register"]["name"],
        float(doc["register"]["area_mil2"]),
        float(doc["register"]["delay_ns"]),
    )
    mux = Cell(
        doc["mux"]["name"],
        float(doc["mux"]["area_mil2"]),
        float(doc["mux"]["delay_ns"]),
    )
    return ComponentLibrary(
        doc.get("name", "custom"), components, register, mux
    )


def _library_to(library: ComponentLibrary) -> Dict[str, Any]:
    components = []
    for op_type in library.supported_op_types():
        for component in library.components_for(op_type):
            components.append(
                {
                    "name": component.name,
                    "type": component.op_type.value,
                    "bit_width": component.bit_width,
                    "area_mil2": component.area_mil2,
                    "delay_ns": component.delay_ns,
                }
            )
    return {
        "name": library.name,
        "components": components,
        "register": {
            "name": library.register.name,
            "area_mil2": library.register.area_mil2,
            "delay_ns": library.register.delay_ns,
        },
        "mux": {
            "name": library.mux.name,
            "area_mil2": library.mux.area_mil2,
            "delay_ns": library.mux.delay_ns,
        },
    }


def _style_from(doc: Dict[str, Any]) -> ArchitectureStyle:
    timing_label = doc.get("timing", "single-cycle")
    try:
        timing = OperationTiming(timing_label)
    except ValueError:
        raise SpecificationError(
            f"unknown timing style {timing_label!r}"
        ) from None
    return ArchitectureStyle(
        timing=timing,
        allow_pipelined=bool(doc.get("pipelined", True)),
        allow_nonpipelined=bool(doc.get("nonpipelined", True)),
    )


def _criteria_from(doc: Dict[str, Any]) -> FeasibilityCriteria:
    return FeasibilityCriteria(
        performance_ns=float(doc["performance_ns"]),
        delay_ns=float(doc["delay_ns"]),
        performance_confidence=float(
            doc.get("performance_confidence", 1.0)
        ),
        area_confidence=float(doc.get("area_confidence", 1.0)),
        delay_confidence=float(doc.get("delay_confidence", 0.8)),
        system_power_mw=(
            float(doc["system_power_mw"])
            if doc.get("system_power_mw") is not None
            else None
        ),
        chip_power_mw=(
            float(doc["chip_power_mw"])
            if doc.get("chip_power_mw") is not None
            else None
        ),
        power_confidence=float(doc.get("power_confidence", 0.9)),
    )


def _package_from(doc: Any) -> ChipPackage:
    if isinstance(doc, int):
        return mosis_package(doc)
    if not isinstance(doc, dict):
        raise SpecificationError(
            f"package must be a Table 2 number or an object, got {doc!r}"
        )
    return ChipPackage(
        name=doc.get("name", "custom"),
        width_mil=float(doc["width_mil"]),
        height_mil=float(doc["height_mil"]),
        pin_count=int(doc["pin_count"]),
        pad_delay_ns=float(doc.get("pad_delay_ns", 25.0)),
        pad_area_mil2=float(doc.get("pad_area_mil2", 297.60)),
    )


def _memory_from(doc: Dict[str, Any]) -> MemoryModule:
    return MemoryModule(
        name=doc["name"],
        words=int(doc["words"]),
        width_bits=int(doc["width_bits"]),
        ports=int(doc.get("ports", 1)),
        access_time_ns=float(doc.get("access_time_ns", 100.0)),
        area_per_bit_mil2=float(doc.get("area_per_bit_mil2", 4.0)),
        off_the_shelf=bool(doc.get("off_the_shelf", False)),
    )
