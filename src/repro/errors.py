"""Exception hierarchy for the CHOP reproduction.

Every error raised by this library derives from :class:`ChopError`, so
callers can catch one type at an API boundary.  Subclasses distinguish the
three broad failure families: malformed inputs (specification, library or
chip-set data), modelling violations (a request the prediction model cannot
honour, such as a module that does not fit the datapath clock), and search
failures (no feasible implementation exists for a partitioning).
"""

from __future__ import annotations


class ChopError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class SpecificationError(ChopError):
    """A behavioral specification (data-flow graph) is malformed.

    Raised for cyclic graphs, dangling value references, duplicate
    identifiers, unsupported inner loops and similar structural problems.
    """


class LibraryError(ChopError):
    """A component library is malformed or cannot serve a request.

    Raised when an operation type has no implementing component, when
    component data is inconsistent (non-positive area/delay), or when a
    module set omits a required operation type.
    """


class ChipError(ChopError):
    """A chip package or chip-set description is invalid.

    Raised for non-positive dimensions, pin counts too small to host the
    mandatory power/ground/control reservations, or assignments that
    reference unknown chips.
    """


class PartitioningError(ChopError):
    """A partitioning is structurally invalid.

    Raised when partitions overlap, omit operations, form mutual data
    dependencies (which the paper's prediction model forbids), or reference
    unknown chips or memory blocks.
    """


class PredictionError(ChopError):
    """The prediction model cannot produce an estimate.

    Raised, for example, when no module in the library fits the datapath
    clock under the single-cycle style, or when a schedule cannot be
    constructed with the requested resources.
    """


class SearchCancelled(ChopError):
    """A search was cancelled cooperatively before completion.

    Raised from a search heuristic's cancellation hook (checked between
    candidate combinations) when the caller — typically the serving
    layer's job queue — asks a long-running enumeration to stop.
    """


class EngineError(ChopError):
    """The batch-evaluation engine produced an inconsistent result.

    Raised when merged shard results do not cover the combination space
    exactly (overlapping or missing index ranges) — a bug guard, never an
    expected runtime condition.
    """


class CombinationExplosionError(PredictionError):
    """The combination space exceeds the enumeration safety cap.

    Carries the computed product and the per-partition prediction-list
    sizes so callers (the CLI, the serving layer) can report *which*
    partitions blow the space up instead of a bare message — the serving
    layer maps this to a 4xx with the :meth:`detail` payload attached.
    """

    def __init__(
        self,
        combinations: int,
        limit: int,
        list_sizes: "dict[str, int]",
    ) -> None:
        sizes = ", ".join(
            f"{name}={size}" for name, size in sorted(list_sizes.items())
        )
        super().__init__(
            f"enumeration over {combinations} combinations exceeds "
            f"the {limit} cap (prediction list sizes: {sizes}); "
            f"enable level-1 pruning or repartition"
        )
        self.combinations = combinations
        self.limit = limit
        self.list_sizes = dict(list_sizes)

    def detail(self) -> "dict[str, object]":
        """A JSON-serializable description for error payloads."""
        return {
            "combinations": self.combinations,
            "limit": self.limit,
            "list_sizes": dict(sorted(self.list_sizes.items())),
        }


class QueueFullError(ChopError):
    """The job queue (or a per-session quota) refused an admission.

    Carries ``retry_after_s`` so the serving layer can answer 429 with a
    concrete ``Retry-After`` header instead of "try again sometime".
    """

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = max(1.0, float(retry_after_s))


class DrainingError(ChopError):
    """The service is draining and no longer admits new work.

    The serving layer maps this to 503 (and ``/readyz`` reports the same
    state); clients should fail over to another instance.
    """


class InfeasibleError(ChopError):
    """No feasible implementation exists for the request.

    Carries the reason so the designer feedback loop (paper section 2.7)
    can report *why* the partitioning failed rather than merely that it did.
    """

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason
