"""Prediction-accuracy validation (the paper's ADAM cross-check).

"The results from BAD have been tested using the ADAM Synthesis tools
and have been very accurate so far" (section 2.4).  With ADAM
unavailable, the reproduction carries out each prediction's design
decisions with its own synthesis backend (`repro.synth`) and scores the
predictor: the fraction of synthesized areas falling inside the
predicted (lb, ml, ub) triplets, and the most-likely estimate's error.
"""

from __future__ import annotations

from repro.bad.predictor import BADPredictor
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.dfg.benchmarks import (
    ar_lattice_filter,
    elliptic_wave_filter,
    fir_filter,
)
from repro.library.presets import extended_library, table1_library
from repro.synth.validate import validation_report


def test_prediction_accuracy(benchmark, save_artifact):
    rows = []

    def run():
        rows.clear()
        cases = [
            (
                "AR filter / exp1 style",
                ar_lattice_filter(),
                BADPredictor(
                    table1_library(),
                    ClockScheme(300.0, dp_multiplier=10),
                    ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
                ),
            ),
            (
                "AR filter / exp2 style",
                ar_lattice_filter(),
                BADPredictor(
                    table1_library(),
                    ClockScheme(300.0),
                    ArchitectureStyle(OperationTiming.MULTI_CYCLE),
                ),
            ),
            (
                "EWF / multi-cycle",
                elliptic_wave_filter(),
                BADPredictor(
                    extended_library(),
                    ClockScheme(300.0),
                    ArchitectureStyle(OperationTiming.MULTI_CYCLE),
                ),
            ),
            (
                "FIR-16 / single-cycle",
                fir_filter(16),
                BADPredictor(
                    extended_library(),
                    ClockScheme(300.0, dp_multiplier=10),
                    ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
                ),
            ),
        ]
        for label, graph, predictor in cases:
            predictions = predictor.predict_partition(graph)
            comparisons = validation_report(
                predictor, graph, predictions
            )
            within = sum(1 for c in comparisons if c.within_bounds)
            errors = [abs(c.relative_error) for c in comparisons]
            rows.append(
                (
                    label,
                    len(comparisons),
                    within,
                    100.0 * within / len(comparisons),
                    100.0 * sum(errors) / len(errors),
                )
            )
        return rows

    benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [
        "case                     designs  in-bounds  in-bounds %  "
        "mean |err| %"
    ]
    for label, total, within, pct, err in rows:
        lines.append(
            f"{label:<24} {total:>7}  {within:>9}  {pct:>10.1f}  "
            f"{err:>11.1f}"
        )
    save_artifact("validation_prediction_accuracy.txt", "\n".join(lines))

    # The paper's "very accurate" claim, quantified: most synthesized
    # areas land inside the predicted bounds, most-likely errors stay
    # in the single digits.
    for _label, _total, _within, pct, err in rows:
        assert pct >= 70.0
        assert err <= 12.0
