"""Hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.dfg.builders import GraphBuilder
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import OpType

_BINARY_TYPES = [OpType.ADD, OpType.SUB, OpType.MUL]


@st.composite
def triplet_parts(draw):
    """(lb, ml, ub) with lb <= ml <= ub, bounded magnitudes."""
    values = draw(
        st.lists(
            st.floats(
                min_value=-1e6,
                max_value=1e6,
                allow_nan=False,
                allow_infinity=False,
            ),
            min_size=3,
            max_size=3,
        )
    )
    lb, ml, ub = sorted(values)
    return lb, ml, ub


@st.composite
def dags(draw, max_ops: int = 24, max_inputs: int = 5):
    """A random acyclic data-flow graph built through GraphBuilder.

    Every operation consumes two previously available values, so the
    graph is acyclic by construction; leaf values become outputs.
    """
    n_inputs = draw(st.integers(min_value=1, max_value=max_inputs))
    n_ops = draw(st.integers(min_value=1, max_value=max_ops))
    builder = GraphBuilder(f"random-{n_inputs}-{n_ops}")
    available = [builder.input(f"in{i}") for i in range(n_inputs)]
    for index in range(n_ops):
        op_type = draw(st.sampled_from(_BINARY_TYPES))
        left = available[
            draw(st.integers(min_value=0, max_value=len(available) - 1))
        ]
        right = available[
            draw(st.integers(min_value=0, max_value=len(available) - 1))
        ]
        available.append(builder.op(op_type, left, right))
    graph_values = set(available[n_inputs:])
    graph = _finish(builder, graph_values)
    return graph


def _finish(builder: GraphBuilder, produced: set) -> DataFlowGraph:
    """Mark every produced-but-unconsumed value as a primary output."""
    consumed = set()
    for op in builder._operations.values():  # test helper: peek inside
        consumed.update(op.inputs)
    for value_id in sorted(produced - consumed):
        builder.output(value_id)
    if not (produced - consumed):
        # Every produced value is consumed somewhere; mark the last one
        # as an output so the graph has a defined delay.
        builder.output(sorted(produced)[-1])
    return builder.build()
