"""Shared helpers for the benchmark harness.

Every bench regenerates one table or figure of the paper and writes the
rendered artifact to ``benchmarks/results/`` so EXPERIMENTS.md can be
refreshed from a single ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_artifact(results_dir):
    """Write one rendered table/figure and echo it to the terminal."""

    def _save(name: str, text: str) -> None:
        path = results_dir / name
        path.write_text(text + "\n")
        print(f"\n=== {name} ===")
        print(text)

    return _save
