"""The CHOP designer session.

:class:`ChopSession` is the top-level API mirroring the paper's Figure 1
loop: the designer supplies the six input groups (specification, library,
chip set, memories + assignments, partitions + assignments, clocks /
style / criteria / parameters — section 2.2), CHOP predicts per-partition
implementations through the embedded BAD, searches combinations with the
heuristic of the designer's choice, and reports feasible designs with
synthesis guidelines.  The designer then modifies the partitioning
(section 2.7) and re-checks — iteration is fast because only predictions
run, never synthesis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
)

from repro.bad.prediction import DesignPrediction
from repro.bad.predictor import PredictorParameters
from repro.bad.styles import ArchitectureStyle, ClockScheme
from repro.chips.chip import Chip, POWER_GROUND_PINS
from repro.chips.package import ChipPackage
from repro.core.feasibility import FeasibilityCriteria
from repro.core.partition import Partition
from repro.core.partitioning import Partitioning
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError, PredictionError
from repro.eval.context import DEFAULT_CACHE_CAPACITY, EvaluationContext
from repro.library.library import ComponentLibrary
from repro.memory.module import MemoryModule
from repro.obs.tracing import span as trace_span

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.engine.workers import EvaluationEngine
    from repro.obs.explain import ExplainCollector, ExplainReport


class ChopSession:
    """One interactive partitioning session."""

    def __init__(
        self,
        graph: DataFlowGraph,
        library: ComponentLibrary,
        clocks: ClockScheme,
        style: ArchitectureStyle,
        criteria: FeasibilityCriteria,
        memories: Iterable[MemoryModule] = (),
        predictor_params: Optional[PredictorParameters] = None,
        prediction_cache_size: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        self.graph = graph
        self.library = library
        self.clocks = clocks
        self.style = style
        self.criteria = criteria
        self.memories: Dict[str, MemoryModule] = {
            m.name: m for m in memories
        }
        self.chips: Dict[str, Chip] = {}
        self.memory_chip: Dict[str, str] = {}
        self._partitions: Dict[str, Partition] = {}
        self._partition_chip: Dict[str, str] = {}
        self._eval = EvaluationContext(
            graph=graph,
            library=library,
            clocks=clocks,
            style=style,
            criteria=criteria,
            memories=self.memories,
            predictor_params=predictor_params,
            cache_capacity=prediction_cache_size,
        )
        self._predictor = self._eval.predictor
        self._partitioning_cache: Optional[Partitioning] = None

    @property
    def _prediction_cache(self):
        """The raw per-content prediction store (compatibility alias)."""
        return self._eval._raw

    def clear_prediction_caches(self) -> None:
        """Drop every cached prediction / task-graph artifact (cold path)."""
        self._eval.clear()

    def eval_stats(self) -> Dict[str, object]:
        """Evaluation-context counters (cache hits, evictions, deltas)."""
        return self._eval.stats()

    # ------------------------------------------------------------------
    # designer inputs and modifications (section 2.7)
    # ------------------------------------------------------------------
    def add_chip(self, name: str, package: ChipPackage) -> Chip:
        """Add one chip of the target chip set."""
        if name in self.chips:
            raise PartitioningError(f"duplicate chip name {name!r}")
        chip = Chip(name=name, package=package)
        self.chips[name] = chip
        self._partitioning_cache = None
        self._eval.mark_placement_dirty()
        return chip

    def set_partitions(
        self,
        partitions: Sequence[Partition],
        assignment: Mapping[str, str],
    ) -> None:
        """Define the tentative partitions and their chip assignments.

        Validates eagerly; on a bad input the previous partitioning is
        restored, so a rejected proposal never leaves the session in an
        unusable state (the baselines' sweep loops rely on this).
        """
        prev_partitions = self._partitions
        prev_chip = self._partition_chip
        self._partitions = {p.name: p for p in partitions}
        self._partition_chip = dict(assignment)
        self._partitioning_cache = None
        self._eval.mark_membership_dirty(self._partitions)
        try:
            self.partitioning()
        except PartitioningError:
            self._partitions = prev_partitions
            self._partition_chip = prev_chip
            self._partitioning_cache = None
            raise

    def assign_memory(self, memory_name: str, chip_name: str) -> None:
        """Place an on-chip memory block on a design chip."""
        if memory_name not in self.memories:
            raise PartitioningError(f"unknown memory {memory_name!r}")
        if chip_name not in self.chips:
            raise PartitioningError(f"unknown chip {chip_name!r}")
        self.memory_chip[memory_name] = chip_name
        self._partitioning_cache = None
        self._eval.mark_placement_dirty()

    def move_partition(self, partition_name: str, chip_name: str) -> None:
        """Migrate one partition to another chip."""
        if partition_name not in self._partitions:
            raise PartitioningError(f"unknown partition {partition_name!r}")
        if chip_name not in self.chips:
            raise PartitioningError(f"unknown chip {chip_name!r}")
        prev = self._partition_chip.get(partition_name)
        self._partition_chip[partition_name] = chip_name
        self._partitioning_cache = None
        self._eval.mark_placement_dirty()
        try:
            self.partitioning()
        except PartitioningError:
            if prev is None:
                del self._partition_chip[partition_name]
            else:
                self._partition_chip[partition_name] = prev
            self._partitioning_cache = None
            raise

    def migrate_operations(
        self, from_partition: str, to_partition: str, op_ids: Iterable[str]
    ) -> None:
        """Move operations between partitions (a section 2.7 change)."""
        src = self._partitions.get(from_partition)
        dst = self._partitions.get(to_partition)
        if src is None or dst is None:
            raise PartitioningError(
                f"unknown partition in migration: {from_partition!r} -> "
                f"{to_partition!r}"
            )
        new_src, new_dst = src.migrate(dst, set(op_ids))
        self._partitions[from_partition] = new_src
        self._partitions[to_partition] = new_dst
        self._partitioning_cache = None
        self._eval.mark_membership_dirty((from_partition, to_partition))
        try:
            self.partitioning()  # re-validate (may raise on mutual dep.)
        except PartitioningError:
            # A rejected migration must not corrupt the session: restore
            # both partitions so the designer (or a sweep loop) can try
            # the next candidate.
            self._partitions[from_partition] = src
            self._partitions[to_partition] = dst
            self._partitioning_cache = None
            raise

    # ------------------------------------------------------------------
    # prediction and search
    # ------------------------------------------------------------------
    def partitioning(self) -> Partitioning:
        """The current tentative partitioning (validated, cached).

        Construction validates coverage and acyclicity — O(graph) work —
        so the snapshot is cached and every section-2.7 mutator drops
        it.  :class:`Partitioning` copies its inputs at construction, so
        the cached object can never observe later session mutations.
        """
        if not self._partitions:
            raise PartitioningError(
                "no partitions defined; call set_partitions first"
            )
        if self._partitioning_cache is None:
            self._partitioning_cache = Partitioning(
                graph=self.graph,
                partitions=self._partitions.values(),
                chips=self.chips.values(),
                partition_chip=self._partition_chip,
                memories=self.memories.values(),
                memory_chip=self.memory_chip,
            )
        return self._partitioning_cache

    def predict(self, partition_name: str) -> List[DesignPrediction]:
        """BAD's raw prediction list for one partition (cached)."""
        partition = self._partitions.get(partition_name)
        if partition is None:
            raise PartitioningError(f"unknown partition {partition_name!r}")
        return list(self._eval.raw_predictions(partition_name, partition))

    def predict_all(self) -> Dict[str, List[DesignPrediction]]:
        """Raw predictions for every partition."""
        return {name: self.predict(name) for name in self._partitions}

    def export_predictions(self) -> Dict[str, List[DesignPrediction]]:
        """Raw prediction lists by partition name, for persistence.

        Computes any partition not yet predicted, so the export always
        covers the whole current partitioning (what the disk prediction
        cache stores).
        """
        return self.predict_all()

    def seed_predictions(
        self,
        predictions: Mapping[str, Sequence[DesignPrediction]],
    ) -> int:
        """Pre-fill the prediction cache from persisted lists.

        Only names matching a current partition are accepted; returns
        how many partitions were seeded.  A subsequent :meth:`predict`
        (and therefore :meth:`check`) on a seeded partition skips BAD
        entirely — the warm path of the disk prediction cache.
        """
        seeded = 0
        for name, partition in self._partitions.items():
            preds = predictions.get(name)
            if not preds:
                continue
            self._eval.seed_predictions(partition, preds)
            seeded += 1
        return seeded

    def max_usable_area_mil2(self) -> float:
        """Optimistic usable area of the roomiest chip (for pruning)."""
        if not self.chips:
            raise PartitioningError("no chips in the target chip set")
        return max(
            chip.package.usable_area_mil2(POWER_GROUND_PINS)
            for chip in self.chips.values()
        )

    def pruned_predictions(
        self, drop_inferior: bool = True
    ) -> Dict[str, List[DesignPrediction]]:
        """Level-1 pruned predictions for every partition (cached).

        Served from the evaluation context: a partition whose content is
        unchanged since the last check reuses both its raw and pruned
        lists, so a warm re-check after one migration only re-predicts
        the two touched partitions.
        """
        usable = self.max_usable_area_mil2()
        return self._eval.pruned_map(
            self._partitions, usable, drop_inferior=drop_inferior
        )

    def check(
        self,
        heuristic: str = "iterative",
        prune: bool = True,
        keep_all: bool = False,
        cancel: Optional[Callable[[], bool]] = None,
        engine: Optional["EvaluationEngine"] = None,
        progress: Optional[Callable[[int, int], None]] = None,
        collector: Optional["ExplainCollector"] = None,
        soft_deadline_s: Optional[float] = None,
        kernel: Optional[str] = None,
    ):
        """Search for feasible implementations of the current partitioning.

        ``heuristic`` is ``"iterative"`` (Figure 5) or ``"enumeration"``.
        ``prune=False`` with ``keep_all=True`` reproduces the paper's
        design-space figures, at the cost the paper measured (section 3.1:
        61.4 s unpruned vs under a second pruned).
        ``cancel`` is a cooperative cancellation hook polled by the
        heuristics between candidates; when it returns ``True`` the check
        raises :class:`repro.errors.SearchCancelled` — this is how the
        serving layer aborts long enumerations and enforces job timeouts.
        ``engine`` (a :class:`repro.engine.EvaluationEngine`) runs the
        enumeration walk on a process pool with results identical to the
        serial path; the iterative heuristic is inherently sequential and
        ignores it.  ``progress`` receives per-shard completion updates
        on engine runs.  ``collector`` (a
        :class:`repro.obs.ExplainCollector`, enumeration only) records
        the per-constraint failure breakdown and forces the serial path.
        ``soft_deadline_s`` bounds the search wall clock *gracefully*:
        instead of raising, an expired budget returns the designs found
        so far with ``SearchResult.degraded=True`` — a partial verdict
        beats no verdict inside an interactive loop.  It forces the
        serial path (see :mod:`repro.search.enumeration`).
        ``kernel`` selects the enumeration evaluation kernel:
        ``"scalar"`` (the reference loop) or ``"vectorized"`` (numpy
        batch screening, byte-identical results — see
        :mod:`repro.kernels`); ``None`` defers to the engine's
        configured default.  The iterative heuristic walks one
        combination at a time and ignores it.
        Returns a :class:`repro.search.results.SearchResult`.
        """
        from repro.search.enumeration import enumeration_search
        from repro.search.iterative import iterative_search

        if kernel not in (None, "scalar", "vectorized"):
            raise PredictionError(
                f"unknown kernel {kernel!r}; use 'scalar' or "
                "'vectorized'"
            )
        with trace_span(
            "session.check", heuristic=heuristic, prune=prune,
            keep_all=keep_all,
        ) as check_span:
            partitioning = self.partitioning()
            with trace_span("session.predict", prune=prune) as sp:
                if prune:
                    predictions = self.pruned_predictions()
                else:
                    predictions = self.predict_all()
                sp.add("partitions", len(predictions))
                sp.add(
                    "predictions",
                    sum(len(p) for p in predictions.values()),
                )
            empty = [
                name for name, preds in predictions.items() if not preds
            ]
            if empty:
                raise PredictionError(
                    f"no feasible predictions survive level-1 pruning "
                    f"for partitions {empty}; relax the constraints or "
                    f"repartition"
                )
            task_graph = self._eval.task_graph(partitioning)
            if heuristic == "enumeration":
                effective_kernel = kernel or (
                    engine.kernel if engine is not None else "scalar"
                )
                result = enumeration_search(
                    partitioning, predictions, self.clocks, self.library,
                    self.criteria, prune=prune, keep_all=keep_all,
                    cancel=cancel, engine=engine, progress=progress,
                    collector=collector, soft_deadline_s=soft_deadline_s,
                    task_graph=task_graph, kernel=kernel,
                    packer=(
                        self._eval.attach_packed
                        if effective_kernel == "vectorized"
                        else None
                    ),
                )
            elif heuristic == "iterative":
                result = iterative_search(
                    partitioning, predictions, self.clocks, self.library,
                    self.criteria, keep_all=keep_all, cancel=cancel,
                    soft_deadline_s=soft_deadline_s, task_graph=task_graph,
                )
            else:
                raise PredictionError(
                    f"unknown heuristic {heuristic!r}; use 'iterative' "
                    "or 'enumeration'"
                )
            check_span.add("combinations", result.trials)
            check_span.add("feasible", len(result.feasible))
            if result.degraded:
                check_span.put("degraded", True)
            if keep_all and result.space is not None:
                # The figures count BAD's per-partition predictions too.
                from repro.search.space import DesignPoint

                for preds in predictions.values():
                    for pred in preds:
                        result.space.record(
                            DesignPoint(
                                kind="partition",
                                area_mil2=pred.area_total.ml,
                                delay_cycles=pred.latency_main,
                                ii_cycles=pred.ii_main,
                            )
                        )
            return result

    def explain(
        self,
        prune: bool = True,
        cancel: Optional[Callable[[], bool]] = None,
    ) -> "ExplainReport":
        """Why is (or isn't) the current partitioning feasible?

        Runs the enumeration walk serially with an
        :class:`repro.obs.ExplainCollector` attached and returns a
        structured :class:`repro.obs.ExplainReport`: the level-1 pruning
        census (predictions kept per partition), the level-2 area kill
        and integration-failure counts, and a per-constraint breakdown —
        which constraint failed, for how many combinations, at what
        probability margin.  Deliberately serial; use :meth:`check` for
        the fast verdict and this for the designer's "what do I change?"
        question.
        """
        from repro.obs.explain import ExplainCollector

        raw = self.predict_all()
        if prune:
            kept = self.pruned_predictions()
        else:
            kept = raw
        level1 = {
            name: {
                "predicted": len(raw.get(name, [])),
                "kept": len(kept.get(name, [])),
            }
            for name in self._partitions
        }
        combination_count = 1
        for preds in kept.values():
            combination_count *= len(preds)
        collector = ExplainCollector()
        if all(kept.get(name) for name in self._partitions):
            self.check(
                heuristic="enumeration", prune=prune, cancel=cancel,
                collector=collector,
            )
        # else: level-1 pruning emptied some partition — the census
        # alone is the explanation; there is nothing to enumerate.
        return collector.report(
            combination_count=combination_count,
            level1=level1,
            heuristic="enumeration",
        )
