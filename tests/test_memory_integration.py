"""Integration-level tests of the memory substrate's constraints."""

from __future__ import annotations

import pytest

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.integration import integrate
from repro.core.partition import Partition
from repro.dfg.builders import GraphBuilder
from repro.errors import InfeasibleError
from repro.library.presets import extended_library
from repro.memory.module import MemoryModule


def _burst_graph(reads: int):
    """``reads`` independent reads from M, summed pairwise."""
    b = GraphBuilder(f"burst{reads}", default_width=16)
    addresses = [b.input(f"a{i}") for i in range(reads)]
    values = [b.mem_read(addresses[i], "M") for i in range(reads)]
    total = values[0]
    for value in values[1:]:
        total = b.add(total, value)
    b.output(total)
    return b.build()


def _session(graph, ports: int, performance_ns: float = 120_000.0):
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=performance_ns, delay_ns=240_000.0
        ),
        memories=[
            MemoryModule("M", 64, 16, ports=ports, access_time_ns=250.0)
        ],
    )
    session.add_chip("chip1", mosis_package(2))
    session.assign_memory("M", "chip1")
    session.set_partitions(
        [Partition.of("P1", graph.operations.keys())],
        {"P1": "chip1"},
    )
    return session


class TestMemoryPortPressure:
    def test_single_port_serializes_accesses(self):
        graph = _burst_graph(8)
        one_port = _session(graph, ports=1)
        two_ports = _session(graph, ports=2)
        best_one = one_port.check("iterative").best()
        best_two = two_ports.check("iterative").best()
        assert best_one is not None and best_two is not None
        # More ports never hurt, and here they strictly help.
        assert best_two.ii_main <= best_one.ii_main

    def test_bandwidth_check_rejects_shared_block_pressure(self):
        """Two partitions each fit the interval alone, but their
        combined accesses against the single-ported block do not."""
        b = GraphBuilder("shared", default_width=16)
        addresses = [b.input(f"a{i}") for i in range(8)]
        reads = [b.mem_read(addresses[i], "M") for i in range(8)]
        left = b.add(reads[0], reads[1])
        left = b.add(left, reads[2])
        left = b.add(left, reads[3], name="left")
        right = b.add(reads[4], reads[5])
        right = b.add(right, reads[6])
        right = b.add(right, reads[7], name="right")
        b.output(left)
        b.output(right)
        graph = b.build()

        session = ChopSession(
            graph=graph,
            library=extended_library(),
            clocks=ClockScheme(300.0),
            style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=120_000.0, delay_ns=240_000.0
            ),
            memories=[
                MemoryModule("M", 64, 16, ports=1, access_time_ns=250.0)
            ],
        )
        session.add_chip("chip1", mosis_package(2))
        session.add_chip("chip2", mosis_package(2))
        session.assign_memory("M", "chip1")

        # Partition by output cone: P1 computes 'left', P2 'right'.
        def cone(output_id):
            producer = graph.value(output_id).producer
            seen = set()
            stack = [producer]
            while stack:
                current = stack.pop()
                if current is None or current in seen:
                    continue
                seen.add(current)
                stack.extend(graph.predecessors(current))
            return seen

        p1_ops = cone("left")
        p2_ops = cone("right")
        session.set_partitions(
            [
                Partition.of("P1", p1_ops),
                Partition.of("P2", p2_ops),
            ],
            {"P1": "chip1", "P2": "chip2"},
        )
        partitioning = session.partitioning()
        pruned = session.pruned_predictions()
        selection = {"P1": pruned["P1"][0], "P2": pruned["P2"][0]}
        tight = max(p.ii_main for p in selection.values())
        # Each partition alone fits (its own 4 accesses <= interval),
        # but 8 combined accesses against one port cannot.
        if tight < 8:
            with pytest.raises(InfeasibleError, match="access cycles"):
                integrate(
                    partitioning, selection, tight, session.clocks,
                    session.library,
                )

    def test_feasible_interval_accepted(self):
        graph = _burst_graph(4)
        session = _session(graph, ports=2)
        partitioning = session.partitioning()
        prediction = session.pruned_predictions()["P1"][0]
        system = integrate(
            partitioning, {"P1": prediction},
            max(prediction.ii_main, 8), session.clocks, session.library,
        )
        assert system.ii_main >= prediction.ii_main


class TestMemoryAreaAccounting:
    def test_resident_block_consumes_die(self):
        graph = _burst_graph(2)
        session = _session(graph, ports=1)
        best = session.check("iterative").best()
        assert best is not None
        usage = best.system.chip_usage["chip1"]
        module = session.memories["M"]
        assert usage.memory_area.ml >= module.on_chip_area_mil2() * 0.9

    def test_off_the_shelf_block_is_free_area(self):
        graph = _burst_graph(2)
        session = ChopSession(
            graph=graph,
            library=extended_library(),
            clocks=ClockScheme(300.0),
            style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=120_000.0, delay_ns=240_000.0
            ),
            memories=[
                MemoryModule("M", 64, 16, access_time_ns=250.0,
                             off_the_shelf=True)
            ],
        )
        session.add_chip("chip1", mosis_package(2))
        session.set_partitions(
            [Partition.of("P1", graph.operations.keys())],
            {"P1": "chip1"},
        )
        best = session.check("iterative").best()
        assert best is not None
        usage = best.system.chip_usage["chip1"]
        assert usage.memory_area.ml == 0.0
