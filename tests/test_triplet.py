"""Tests for the statistical triplet type."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.stats import Triplet
from tests.strategies import triplet_parts


class TestConstruction:
    def test_exact(self):
        t = Triplet.exact(5)
        assert t.lb == t.ml == t.ub == 5.0
        assert t.is_exact

    def test_spread(self):
        t = Triplet.spread(100, 0.9, 1.25)
        assert t == Triplet(90.0, 100.0, 125.0)

    def test_spread_negative_value_flips_bounds(self):
        t = Triplet.spread(-100, 0.9, 1.25)
        assert t.lb == -125.0 and t.ub == -90.0

    def test_spread_rejects_inverted_factors(self):
        with pytest.raises(ValueError):
            Triplet.spread(100, 1.1, 1.2)
        with pytest.raises(ValueError):
            Triplet.spread(100, 0.9, 0.95)

    def test_rejects_bad_ordering(self):
        with pytest.raises(ValueError):
            Triplet(2.0, 1.0, 3.0)
        with pytest.raises(ValueError):
            Triplet(1.0, 3.0, 2.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            Triplet(float("nan"), 1.0, 2.0)

    def test_zero(self):
        assert Triplet.zero() == Triplet.exact(0)


class TestArithmetic:
    def test_add(self):
        a = Triplet(1, 2, 3)
        b = Triplet(10, 20, 30)
        assert a + b == Triplet(11, 22, 33)

    def test_add_scalar(self):
        assert Triplet(1, 2, 3) + 10 == Triplet(11, 12, 13)

    def test_radd_enables_sum_builtin(self):
        total = sum([Triplet(1, 2, 3), Triplet(4, 5, 6)], Triplet.zero())
        assert total == Triplet(5, 7, 9)

    def test_sub_pairs_worst_case_bounds(self):
        a = Triplet(10, 20, 30)
        b = Triplet(1, 2, 3)
        assert a - b == Triplet(7, 18, 29)

    def test_mul_positive(self):
        assert Triplet(1, 2, 3) * 2 == Triplet(2, 4, 6)

    def test_mul_negative_flips(self):
        t = Triplet(1, 2, 3) * -1
        assert t == Triplet(-3, -2, -1)

    def test_div(self):
        assert Triplet(2, 4, 6) / 2 == Triplet(1, 2, 3)

    def test_div_by_zero(self):
        with pytest.raises(ZeroDivisionError):
            Triplet(1, 2, 3) / 0

    def test_sum_static(self):
        assert Triplet.sum([]) == Triplet.zero()
        assert Triplet.sum([Triplet(1, 2, 3)] * 3) == Triplet(3, 6, 9)

    def test_max(self):
        result = Triplet.max([Triplet(1, 5, 9), Triplet(2, 3, 4)])
        assert result == Triplet(2, 5, 9)

    def test_max_empty_is_zero(self):
        assert Triplet.max([]) == Triplet.zero()


class TestQueries:
    def test_width(self):
        assert Triplet(1, 2, 4).width == 3

    def test_certainly_le(self):
        t = Triplet(10, 20, 30)
        assert t.certainly_le(30)
        assert not t.certainly_le(29)

    def test_certainly_gt(self):
        t = Triplet(10, 20, 30)
        assert t.certainly_gt(9)
        assert not t.certainly_gt(10)

    def test_format(self):
        assert "100" in format(Triplet.exact(100), ".4g")

    def test_scale_bounds_widen(self):
        t = Triplet(90, 100, 110).scale_bounds(0.5, 2.0)
        assert t.lb == 45 and t.ub == 220 and t.ml == 100


class TestProperties:
    @given(triplet_parts(), triplet_parts())
    def test_addition_preserves_ordering(self, p1, p2):
        t = Triplet(*p1) + Triplet(*p2)
        assert t.lb <= t.ml <= t.ub

    @given(triplet_parts(), triplet_parts())
    def test_subtraction_preserves_ordering(self, p1, p2):
        t = Triplet(*p1) - Triplet(*p2)
        assert t.lb <= t.ml <= t.ub

    @given(
        triplet_parts(),
        st.floats(min_value=-100, max_value=100, allow_nan=False),
    )
    def test_scaling_preserves_ordering(self, parts, factor):
        t = Triplet(*parts) * factor
        assert t.lb <= t.ml <= t.ub

    @given(triplet_parts(), triplet_parts())
    def test_addition_commutes(self, p1, p2):
        a, b = Triplet(*p1), Triplet(*p2)
        assert a + b == b + a

    @given(triplet_parts())
    def test_zero_is_identity(self, parts):
        t = Triplet(*parts)
        assert t + Triplet.zero() == t

    @given(triplet_parts())
    def test_width_non_negative(self, parts):
        assert Triplet(*parts).width >= 0
