"""Partition-creation schemes.

The paper's experiments use manual partitionings: "The first partitioning
had a single partition, the second had two partitions (a horizontal cut
from the middle of the graph), and the third had three partitions of
approximately equal size" (section 3).  :func:`horizontal_cut` generalises
that construction: it slices the graph into ``k`` bands of consecutive
ASAP levels with approximately equal operation counts.  Because every band
is downward-closed in level order, data only flows from earlier bands to
later ones, so the partition-level graph is automatically acyclic.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.partition import Partition
from repro.dfg.graph import DataFlowGraph
from repro.errors import PartitioningError


def single_partition(graph: DataFlowGraph, name: str = "P1") -> Partition:
    """The whole specification as one partition."""
    return Partition.of(name, graph.operations.keys())


def horizontal_cut(graph: DataFlowGraph, count: int) -> List[Partition]:
    """Cut the graph into ``count`` level bands of similar size.

    Partitions are named ``P1`` (inputs side) through ``P<count>``
    (outputs side).  Raises when the graph has fewer levels than requested
    partitions — a horizontal cut cannot split within a level without
    risking mutual dependencies.
    """
    if count < 1:
        raise PartitioningError(f"partition count must be >= 1, got {count}")
    if count == 1:
        return [single_partition(graph)]

    levels: Dict[str, int] = {}
    for op_id in graph.topological_order():
        preds = graph.predecessors(op_id)
        levels[op_id] = 1 + max((levels[p] for p in preds), default=0)
    max_level = max(levels.values(), default=0)
    if max_level < count:
        raise PartitioningError(
            f"graph {graph.name!r} has only {max_level} levels; cannot make "
            f"{count} horizontal bands"
        )

    by_level: Dict[int, List[str]] = {}
    for op_id, level in levels.items():
        by_level.setdefault(level, []).append(op_id)

    total_ops = graph.op_count()
    target = total_ops / count
    bands: List[List[str]] = []
    current: List[str] = []
    remaining_bands = count
    for level in range(1, max_level + 1):
        level_ops = sorted(by_level.get(level, ()))
        levels_left = max_level - level
        # Close the band at whichever level boundary lands nearest the
        # per-band target, as long as enough levels remain to populate
        # the remaining bands.
        if (
            remaining_bands > 1
            and current
            and levels_left >= remaining_bands - 1
        ):
            done = sum(len(b) for b in bands)
            goal = target * (len(bands) + 1) - done
            undershoot = goal - len(current)
            overshoot = len(current) + len(level_ops) - goal
            if undershoot <= overshoot:
                bands.append(current)
                current = []
                remaining_bands -= 1
        current.extend(level_ops)
    if current:
        bands.append(current)
    while len(bands) > count:  # merge any trailing sliver
        tail = bands.pop()
        bands[-1].extend(tail)
    if len(bands) != count or any(not band for band in bands):
        raise PartitioningError(
            f"could not form {count} non-empty bands for {graph.name!r}"
        )
    return [
        Partition.of(f"P{i + 1}", band) for i, band in enumerate(bands)
    ]
