"""Vectorized screening of combination index blocks.

:func:`evaluate_range_batch` is the ``kernel="vectorized"`` counterpart
of :func:`repro.engine.workers.evaluate_range`: same signature shape,
same return value, byte-identical feasible list.  It walks the flat
index range in blocks, kills every combination a kernel can *prove*
infeasible, and runs the unchanged scalar integration pipeline on the
survivors in flat-index order — so the designs appended (and therefore
``SearchResult.to_dict()``) are identical to the scalar walk by
construction.

Two kill families, with different contracts (see docs/performance.md):

* **Exact structural kills** replicate a scalar check bit for bit: the
  level-2 area prune (same sequential float64 sums in the same chip and
  partition order as :func:`~repro.engine.workers.chip_area_hopeless`),
  the pipelined data-rate mismatch, the memory-bandwidth window and the
  memory pin capacity (integer arithmetic, selection-independent
  thresholds).  These keep the ``pruned_level2`` and structural part of
  ``integration_infeasible`` span counters exact.
* **Sound verdict kills** prove the *feasibility verdict* must fail
  using optimistic bounds: the real integrated quantity is
  componentwise >= the screened bound (integration only adds area,
  power and clock overhead), the triangular CDF is monotone
  non-increasing in each of (lb, ml, ub), and the kill threshold keeps
  a ``1e-9`` margin over the scalar pass tolerance of ``1e-12`` — so a
  killed combination can never be feasible, but the scalar path might
  have classified it as integration-infeasible instead.  Verdict kills
  are therefore tallied under their own ``screened_verdict`` counter;
  they never change the feasible list, only where a doomed combination
  is written off.

Cancellation is cooperative per block and per survivor; a cancelled
batch credits whole screened blocks to the span counters where the
scalar loop counts single combinations — the only (documented) counter
divergence besides ``screened_verdict``.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

import numpy as np

from repro.errors import SearchCancelled
from repro.stats.batch import triangular_cdf_array

if TYPE_CHECKING:  # pragma: no cover — typing only
    from repro.bad.prediction import DesignPrediction
    from repro.bad.styles import ClockScheme
    from repro.core.feasibility import FeasibilityCriteria
    from repro.engine.workers import EvaluationProblem
    from repro.kernels.packing import PackedPredictions
    from repro.search.results import FeasibleDesign

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "evaluate_range_batch",
    "level1_keep_mask",
    "lexicographic_argmin",
    "screen_block",
]

#: Index block processed per kernel pass: big enough to amortise the
#: python-level loop, small enough to poll cancellation promptly and
#: keep the working set (~a dozen float64 columns) inside L2.
DEFAULT_BLOCK_SIZE = 4096

#: Verdict kills need the screened probability to be *below* the
#: confidence by more than the scalar pass tolerance (1e-12) plus any
#: float noise in the CDF arithmetic; 1e-9 dominates both.
KILL_MARGIN = 1e-9

#: Verdict screens are skipped for pathological confidences this small:
#: the scalar tolerance would let a zero probability pass them.
_MIN_CONFIDENCE = 1e-6

#: Larger than any real initiation interval; the min-reduce identity for
#: the pipelined-rate scan.
_II_SENTINEL = np.int64(2) ** 62


def lexicographic_argmin(*keys: np.ndarray) -> int:
    """Index of the lexicographically smallest tuple across ``keys``.

    ``lexicographic_argmin(ii, latency)`` is the vectorized analog of
    ``min(range(n), key=lambda i: (ii[i], latency[i]))`` — ties resolve
    to the lowest index, matching :meth:`SearchResult.best`'s ``min``
    over the flat visit order.
    """
    if not keys or keys[0].shape[0] == 0:
        raise ValueError("argmin of an empty key set")
    # np.lexsort sorts by the *last* key first and is stable, so passing
    # the keys reversed makes keys[0] most significant and preserves
    # input order among full ties.
    return int(np.lexsort(keys[::-1])[0])


def level1_keep_mask(
    predictions: Sequence["DesignPrediction"],
    criteria: "FeasibilityCriteria",
    clocks: "ClockScheme",
    max_usable_area_mil2: float,
) -> np.ndarray:
    """Vectorized :func:`~repro.core.feasibility.prediction_possibly_feasible`.

    Every comparison is the same single float64 op as the scalar test,
    so the mask equals the scalar filter exactly — ``level1_prune``
    switches to it transparently on long lists.
    """
    n = len(predictions)
    area_lb = np.array(
        [p.area_total.lb for p in predictions], dtype=np.float64
    )
    area_ub = np.array(
        [p.area_total.ub for p in predictions], dtype=np.float64
    )
    ii = np.array([p.ii_main for p in predictions], dtype=np.int64)
    latency = np.array(
        [p.latency_main for p in predictions], dtype=np.int64
    )
    keep = np.ones(n, dtype=bool)
    if criteria.area_confidence >= 1.0 - 1e-12:
        keep &= ~(area_ub > max_usable_area_mil2)
    else:
        keep &= ~(area_lb > max_usable_area_mil2)
    cycle = clocks.main_cycle_ns
    keep &= ~(ii * cycle > criteria.performance_ns)
    keep &= ~(latency * cycle > criteria.delay_ns)
    if criteria.chip_power_mw is not None or (
        criteria.system_power_mw is not None
    ):
        power_lb = np.array(
            [p.power_mw.lb for p in predictions], dtype=np.float64
        )
        for limit in (criteria.chip_power_mw, criteria.system_power_mw):
            if limit is not None:
                keep &= ~(power_lb > limit)
    return keep


def screen_block(
    problem: "EvaluationProblem",
    packed: "PackedPredictions",
    flats: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Kill masks and reduced columns for one flat-index block.

    Returns ``(prune_kill, unintegrable, verdict_kill, ii_main,
    latency_max)`` — boolean masks aligned with ``flats`` (each mask is
    reported independently of the others; precedence is applied by the
    caller in scalar classification order) plus the per-combination
    initiation interval and max latency used by the screens and the
    argmin hint.
    """
    count = flats.shape[0]
    positions = range(len(packed.names))
    digits = [
        (flats // packed.weights[p]) % packed.radices[p]
        for p in positions
    ]
    sel_ii = [packed.ii[p][digits[p]] for p in positions]
    ii_main = sel_ii[0].copy()
    for p in positions:
        if p:
            np.maximum(ii_main, sel_ii[p], out=ii_main)
    latency_max = packed.latency[0][digits[0]].copy()
    for p in positions:
        if p:
            np.maximum(
                latency_max, packed.latency[p][digits[p]],
                out=latency_max,
            )

    # -- exact level-2 prune: sequential float sums in scalar order --
    prune_kill = np.zeros(count, dtype=bool)
    if problem.prune:
        for chip_index, chip_positions in enumerate(
            packed.chip_positions
        ):
            if not chip_positions:
                continue
            acc = np.zeros(count, dtype=np.float64)
            for p in chip_positions:
                acc += packed.area_lb[p][digits[p]]
            prune_kill |= acc > packed.usable_opt[chip_index]

    # -- exact structural integration failures --
    unintegrable = np.zeros(count, dtype=bool)
    if packed.memory_pins_infeasible:
        unintegrable[:] = True
    else:
        rate_min = np.full(count, _II_SENTINEL, dtype=np.int64)
        rate_max = np.full(count, -1, dtype=np.int64)
        any_pipelined = False
        for p in positions:
            if not packed.pipelined[p].any():
                continue
            any_pipelined = True
            is_pipe = packed.pipelined[p][digits[p]]
            np.minimum(
                rate_min,
                np.where(is_pipe, sel_ii[p], _II_SENTINEL),
                out=rate_min,
            )
            np.maximum(
                rate_max,
                np.where(is_pipe, sel_ii[p], np.int64(-1)),
                out=rate_max,
            )
        if any_pipelined:
            unintegrable |= rate_max > rate_min
        if packed.memory_need > 0:
            unintegrable |= (
                ii_main // packed.transfer_multiplier
            ) < packed.memory_need

    # -- sound verdict kills on optimistic bounds --
    verdict = np.zeros(count, dtype=bool)
    criteria = problem.criteria
    main_cycle = problem.clocks.main_cycle_ns
    if criteria.performance_confidence > _MIN_CONFIDENCE:
        # Real performance lb = clock.lb * ii with clock.lb >= main
        # cycle, so this bound exceeding the limit forces a zero CDF.
        verdict |= main_cycle * ii_main > criteria.performance_ns
    if criteria.delay_confidence > _MIN_CONFIDENCE:
        # The schedule makespan is >= every process task's latency.
        verdict |= main_cycle * latency_max > criteria.delay_ns
    if criteria.area_confidence > _MIN_CONFIDENCE:
        for chip_index, chip_positions in enumerate(
            packed.chip_positions
        ):
            if not chip_positions:
                continue
            sum_lb = np.zeros(count, dtype=np.float64)
            sum_ml = np.zeros(count, dtype=np.float64)
            sum_ub = np.zeros(count, dtype=np.float64)
            for p in chip_positions:
                sum_lb += packed.area_lb[p][digits[p]]
                sum_ml += packed.area_ml[p][digits[p]]
                sum_ub += packed.area_ub[p][digits[p]]
            probability = triangular_cdf_array(
                packed.usable_real[chip_index], sum_lb, sum_ml, sum_ub
            )
            verdict |= probability < (
                criteria.area_confidence - KILL_MARGIN
            )
    power_screens = criteria.power_confidence > _MIN_CONFIDENCE and (
        criteria.chip_power_mw is not None
        or criteria.system_power_mw is not None
    )
    if power_screens:
        system_power = np.zeros(count, dtype=np.float64)
        for chip_index, chip_positions in enumerate(
            packed.chip_positions
        ):
            if not chip_positions:
                continue
            chip_power = np.zeros(count, dtype=np.float64)
            for p in chip_positions:
                chip_power += packed.power_lb[p][digits[p]]
            if criteria.chip_power_mw is not None:
                verdict |= chip_power > criteria.chip_power_mw
            system_power += chip_power
        if criteria.system_power_mw is not None:
            verdict |= system_power > criteria.system_power_mw

    return prune_kill, unintegrable, verdict, ii_main, latency_max


def evaluate_range_batch(
    problem: "EvaluationProblem",
    start: int,
    stop: int,
    cancel: Optional[Callable[[], bool]] = None,
    counters: Optional[Dict[str, int]] = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> Tuple[List["FeasibleDesign"], int]:
    """Vectorized-screening twin of ``evaluate_range`` over [start, stop).

    Survivors of the screens run the *scalar* ``evaluate_range`` one
    flat index at a time, in order — identical code path, identical
    floats, identical appended designs.  Counter contract vs the scalar
    loop: ``combinations``, ``pruned_level2`` and ``feasible`` match
    exactly; ``integration_infeasible`` counts the structurally-killed
    plus the survivors that failed real integration (a verdict-screened
    combination the scalar path would have charged there lands in
    ``screened_verdict`` instead — see the module docstring).
    """
    from repro.engine.workers import evaluate_range

    packed = problem.packed()
    feasible: List["FeasibleDesign"] = []
    trials = 0
    pruned = 0
    structural = 0
    screened = 0
    survivor_counters: Dict[str, int] = {}
    try:
        for block_start in range(start, stop, block_size):
            if cancel is not None and cancel():
                raise SearchCancelled(
                    f"enumeration cancelled after {trials} of "
                    f"{stop - start} combinations"
                )
            block_stop = min(stop, block_start + block_size)
            flats = np.arange(block_start, block_stop, dtype=np.int64)
            prune_kill, unintegrable, verdict, _, _ = screen_block(
                problem, packed, flats
            )
            trials += flats.shape[0]
            # Scalar classification order: the prune check runs first,
            # then integration, then the verdict.
            pruned += int(np.count_nonzero(prune_kill))
            structural += int(
                np.count_nonzero(unintegrable & ~prune_kill)
            )
            screened += int(
                np.count_nonzero(
                    verdict & ~prune_kill & ~unintegrable
                )
            )
            survivors = flats[
                ~(prune_kill | unintegrable | verdict)
            ]
            for flat in survivors.tolist():
                if cancel is not None and cancel():
                    raise SearchCancelled(
                        f"enumeration cancelled after {trials} of "
                        f"{stop - start} combinations"
                    )
                designs, _ = evaluate_range(
                    problem, flat, flat + 1,
                    counters=survivor_counters,
                )
                feasible.extend(designs)
    finally:
        if counters is not None:
            counters["combinations"] = (
                counters.get("combinations", 0) + trials
            )
            counters["pruned_level2"] = (
                counters.get("pruned_level2", 0) + pruned
            )
            counters["integration_infeasible"] = (
                counters.get("integration_infeasible", 0)
                + structural
                + survivor_counters.get("integration_infeasible", 0)
            )
            counters["screened_verdict"] = (
                counters.get("screened_verdict", 0) + screened
            )
            counters["feasible"] = (
                counters.get("feasible", 0) + len(feasible)
            )
    return feasible, trials
