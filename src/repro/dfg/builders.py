"""Incremental construction and parameterized generation of data-flow graphs.

:class:`GraphBuilder` offers a small fluent API::

    b = GraphBuilder("example", default_width=16)
    x = b.input("x")
    k = b.input("k")
    p = b.op(OpType.MUL, x, k)           # auto-named value
    y = b.op(OpType.ADD, p, x, name="y")
    b.output(y)
    graph = b.build()

Each ``op`` call returns the produced value's id, so expressions compose
naturally.  The builder checks referential integrity as it goes and the
final :meth:`GraphBuilder.build` validates acyclicity.

The module also hosts the parameterized workload generators behind the
scaling benchmarks and the auto-partitioner's tests: seeded random
layered DAGs (:func:`random_layered_dag`), deterministic filter cascades
(:func:`filter_chain`) and sized FFT butterfly meshes
(:func:`fft_butterflies`), unified under :func:`generate_dfg`.  All are
deterministic given their parameters — the same ``(kind, ops, seed)``
triple always yields a byte-identical graph document.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.dfg.graph import DataFlowGraph, Operation, Value
from repro.dfg.ops import OpType
from repro.errors import SpecificationError
from repro.units import DEFAULT_BIT_WIDTH


class GraphBuilder:
    """Builds a :class:`DataFlowGraph` one operation at a time."""

    def __init__(self, name: str, default_width: int = DEFAULT_BIT_WIDTH) -> None:
        if default_width <= 0:
            raise SpecificationError(
                f"default width must be positive, got {default_width}"
            )
        self.name = name
        self.default_width = default_width
        self._operations: Dict[str, Operation] = {}
        self._values: Dict[str, Value] = {}
        self._op_counter = 0
        self._built = False

    # ------------------------------------------------------------------
    # node creation
    # ------------------------------------------------------------------
    def input(self, value_id: str, width: Optional[int] = None) -> str:
        """Declare a primary input value; returns its id."""
        self._require_open()
        if value_id in self._values:
            raise SpecificationError(f"duplicate value id {value_id!r}")
        self._values[value_id] = Value(
            id=value_id, width=width or self.default_width
        )
        return value_id

    def op(
        self,
        op_type: OpType,
        *inputs: str,
        name: Optional[str] = None,
        width: Optional[int] = None,
        memory_block: Optional[str] = None,
    ) -> str:
        """Add an operation consuming ``inputs``; returns the output value id.

        For :data:`OpType.MEM_WRITE` the return value is the operation id
        (writes produce no value).
        """
        self._require_open()
        for vid in inputs:
            if vid not in self._values:
                raise SpecificationError(
                    f"operation consumes undeclared value {vid!r}"
                )
        self._op_counter += 1
        op_id = f"{op_type.value}{self._op_counter}"
        if op_id in self._operations:  # defensive; counter makes this unlikely
            raise SpecificationError(f"duplicate operation id {op_id!r}")

        if op_type is OpType.MEM_WRITE:
            operation = Operation(
                id=op_id,
                op_type=op_type,
                inputs=tuple(inputs),
                output=None,
                memory_block=memory_block,
            )
            self._operations[op_id] = operation
            return op_id

        out_id = name if name is not None else f"v_{op_id}"
        if out_id in self._values:
            raise SpecificationError(f"duplicate value id {out_id!r}")
        operation = Operation(
            id=op_id,
            op_type=op_type,
            inputs=tuple(inputs),
            output=out_id,
            memory_block=memory_block,
        )
        self._operations[op_id] = operation
        self._values[out_id] = Value(
            id=out_id, width=width or self.default_width, producer=op_id
        )
        return out_id

    # Convenience wrappers for the common arithmetic types -------------
    def add(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.ADD, a, b, name=name)

    def sub(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.SUB, a, b, name=name)

    def mul(self, a: str, b: str, name: Optional[str] = None) -> str:
        return self.op(OpType.MUL, a, b, name=name)

    def mem_read(
        self, address: str, memory_block: str, name: Optional[str] = None
    ) -> str:
        return self.op(
            OpType.MEM_READ, address, name=name, memory_block=memory_block
        )

    def mem_write(self, value: str, memory_block: str) -> str:
        return self.op(OpType.MEM_WRITE, value, memory_block=memory_block)

    def output(self, value_id: str) -> None:
        """Mark an existing value as a primary output."""
        self._require_open()
        value = self._values.get(value_id)
        if value is None:
            raise SpecificationError(
                f"cannot mark unknown value {value_id!r} as output"
            )
        self._values[value_id] = Value(
            id=value.id,
            width=value.width,
            producer=value.producer,
            is_output=True,
        )

    # ------------------------------------------------------------------
    # finalisation
    # ------------------------------------------------------------------
    def build(self) -> DataFlowGraph:
        """Finish construction and validate the graph."""
        self._require_open()
        self._built = True
        graph = DataFlowGraph(self.name, self._operations, self._values)
        graph.topological_order()  # raises on cycles
        return graph

    def _require_open(self) -> None:
        if self._built:
            raise SpecificationError(
                "builder already finalised; create a new GraphBuilder"
            )


# ----------------------------------------------------------------------
# parameterized workload generators
# ----------------------------------------------------------------------

#: Arithmetic mix of the random generator, weighted towards the cheap
#: adders real behavioral code is dominated by.
_RANDOM_OP_MIX = (
    OpType.ADD, OpType.ADD, OpType.ADD, OpType.SUB, OpType.SUB,
    OpType.MUL,
)

#: Kinds :func:`generate_dfg` understands.
GENERATOR_KINDS = ("layered", "chain", "butterfly")


def random_layered_dag(
    op_count: int,
    seed: int = 0,
    layers: Optional[int] = None,
    width: int = DEFAULT_BIT_WIDTH,
    fan_in_window: int = 3,
    name: Optional[str] = None,
) -> DataFlowGraph:
    """A seeded random layered DAG of ``op_count`` operations.

    Operations are placed on ``layers`` consecutive layers (default
    ``max(4, round(sqrt(op_count)))``); each consumes two values drawn
    from the previous ``fan_in_window`` layers (biased towards the
    nearest), so the graph has the mix of local chains and longer skips
    that makes partition boundaries non-trivial.  Values nothing
    consumes become primary outputs.  Deterministic for a given
    ``(op_count, seed, layers, width, fan_in_window)``.
    """
    if op_count < 1:
        raise SpecificationError(
            f"op_count must be >= 1, got {op_count}"
        )
    if layers is None:
        layers = max(4, round(op_count ** 0.5))
    layers = max(1, min(layers, op_count))
    rng = random.Random(seed)
    b = GraphBuilder(
        name or f"layered{op_count}s{seed}", default_width=width
    )
    inputs = [
        b.input(f"in{i}") for i in range(max(2, min(8, op_count)))
    ]
    produced: List[List[str]] = [list(inputs)]
    base = op_count // layers
    extra = op_count % layers
    made = 0
    for layer in range(layers):
        count = base + (1 if layer < extra else 0)
        current: List[str] = []
        pool_layers = produced[-fan_in_window:]
        for _ in range(count):
            made += 1
            # Bias towards the most recent layer: draw each operand
            # from a uniformly chosen layer of the window, then a
            # uniform value within it.
            operands = []
            for _operand in range(2):
                source = pool_layers[
                    rng.randrange(len(pool_layers))
                ]
                operands.append(source[rng.randrange(len(source))])
            op_type = _RANDOM_OP_MIX[
                rng.randrange(len(_RANDOM_OP_MIX))
            ]
            current.append(b.op(op_type, *operands))
        if current:
            produced.append(current)
    graph_values = {vid for layer_vals in produced for vid in layer_vals}
    consumed = {
        vid for op in b._operations.values() for vid in op.inputs
    }
    for vid in sorted(graph_values - consumed):
        b.output(vid)
    graph = b.build()
    assert graph.op_count() == op_count == made
    return graph


def filter_chain(
    sections: int,
    width: int = DEFAULT_BIT_WIDTH,
    name: Optional[str] = None,
) -> DataFlowGraph:
    """A cascade of ``sections`` two-multiplier filter sections.

    Each section computes ``y = (x*k1 + s) - (x*k1 + s)*k2`` — four
    operations (2 mul, 1 add, 1 sub) feeding the next section, the
    narrow-deep extreme of the generator family (cut anywhere and only
    one value crosses).  Deterministic; ``op_count == 4 * sections``.
    """
    if sections < 1:
        raise SpecificationError(
            f"sections must be >= 1, got {sections}"
        )
    b = GraphBuilder(name or f"filterchain{sections}", default_width=width)
    signal = b.input("x0")
    state = b.input("s0")
    for section in range(sections):
        k1 = b.input(f"k1_{section}")
        k2 = b.input(f"k2_{section}")
        scaled = b.mul(signal, k1)
        summed = b.add(scaled, state)
        feedback = b.mul(summed, k2)
        signal = b.sub(summed, feedback)
        state = summed
    b.output(signal)
    return b.build()


def fft_butterflies(
    op_target: int,
    width: int = DEFAULT_BIT_WIDTH,
) -> DataFlowGraph:
    """The largest radix-2 FFT mesh within ``op_target`` operations.

    Sizes :func:`repro.dfg.benchmarks_ext.fft_graph` by its closed-form
    operation count (``points/2 * log2(points) * 10``), picking the
    biggest power-of-two transform whose mesh fits in ``op_target``
    (minimum: the 2-point transform, 10 operations).
    """
    from repro.dfg.benchmarks_ext import fft_graph

    if op_target < 10:
        raise SpecificationError(
            f"op_target must be >= 10 (one butterfly), got {op_target}"
        )
    points = 2
    while True:
        nxt = points * 2
        stages = nxt.bit_length() - 1
        if (nxt // 2) * stages * 10 > op_target:
            break
        points = nxt
    return fft_graph(points, width=width)


def generate_dfg(
    kind: str,
    ops: int,
    seed: int = 0,
    width: int = DEFAULT_BIT_WIDTH,
) -> DataFlowGraph:
    """One generator entry point for benchmarks, tests and the CLI.

    ``kind`` is ``"layered"`` (seeded random layered DAG, exactly
    ``ops`` operations), ``"chain"`` (filter cascade, ``ops`` rounded
    down to a multiple of 4) or ``"butterfly"`` (largest FFT mesh within
    ``ops``).  Only ``"layered"`` consumes the seed; the structured
    kinds are deterministic by shape alone.
    """
    if kind == "layered":
        return random_layered_dag(ops, seed=seed, width=width)
    if kind == "chain":
        return filter_chain(max(1, ops // 4), width=width)
    if kind == "butterfly":
        return fft_butterflies(ops, width=width)
    raise SpecificationError(
        f"unknown generator kind {kind!r}; use one of {GENERATOR_KINDS}"
    )
