"""Tests for modulo register binding of pipelined designs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.allocation import (
    partition_resource_model,
    register_requirement,
    value_lifetimes,
)
from repro.bad.scheduling import list_schedule
from repro.errors import PredictionError
from repro.synth.modulo import modulo_register_bind
from tests.strategies import dags


def _schedule(graph, capacities=None):
    duration = {op_id: 1 for op_id in graph.operations}
    op_class, counts = partition_resource_model(graph)
    return list_schedule(graph, duration, op_class, capacities or counts)


def _assert_no_collisions(graph, schedule, binding):
    """No register holds two live instances in the same modulo slot."""
    ii = binding.initiation_interval
    lifetimes = value_lifetimes(graph, schedule)
    per_register = {}
    for value_id, registers in binding.registers_of.items():
        birth, death = lifetimes[value_id]
        slots = [0] * ii
        for cycle in range(birth, death):
            slots[cycle % ii] += 1
        # Instance k of the value covers the slots where coverage > k.
        for instance, register in enumerate(registers):
            for slot in range(ii):
                if slots[slot] > instance:
                    key = (register, slot)
                    assert key not in per_register, (
                        f"register {register} slot {slot} used by both "
                        f"{per_register.get(key)} and {value_id}"
                    )
                    per_register[key] = value_id


class TestModuloBinding:
    def test_matches_predictor_lower_bound(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 6, "mul": 8})
        for ii in (2, 3, 5, schedule.latency):
            binding = modulo_register_bind(ar_graph, schedule, ii)
            lower = register_requirement(ar_graph, schedule, ii)
            assert binding.register_count >= lower
            # First-fit should stay close to the bound.
            assert binding.register_count <= max(lower * 2, lower + 4)

    def test_nonpipelined_interval_equals_left_edge(self, ar_graph):
        from repro.synth.binding import bind_design

        schedule = _schedule(ar_graph, {"add": 2, "mul": 2})
        binding = modulo_register_bind(
            ar_graph, schedule, schedule.latency
        )
        left_edge = bind_design(ar_graph, schedule)
        # At II = latency nothing overlaps; the modulo binder needs no
        # more than a small constant over the optimal left edge.
        assert binding.register_count >= left_edge.register_count
        assert binding.register_count <= left_edge.register_count + 3

    def test_no_slot_collisions(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 6, "mul": 8})
        for ii in (2, 4, 7):
            binding = modulo_register_bind(ar_graph, schedule, ii)
            _assert_no_collisions(ar_graph, schedule, binding)

    def test_long_lived_values_get_multiple_registers(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 6, "mul": 8})
        binding = modulo_register_bind(ar_graph, schedule, 2)
        lifetimes = value_lifetimes(ar_graph, schedule)
        for value_id, registers in binding.registers_of.items():
            birth, death = lifetimes[value_id]
            slots = [0] * 2
            for cycle in range(birth, death):
                slots[cycle % 2] += 1
            assert len(registers) == max(slots)

    def test_smaller_interval_needs_more_registers(self, ar_graph):
        schedule = _schedule(ar_graph, {"add": 6, "mul": 8})
        tight = modulo_register_bind(ar_graph, schedule, 2)
        loose = modulo_register_bind(
            ar_graph, schedule, schedule.latency
        )
        assert tight.register_count >= loose.register_count

    def test_rejects_bad_interval(self, ar_graph):
        schedule = _schedule(ar_graph)
        with pytest.raises(PredictionError):
            modulo_register_bind(ar_graph, schedule, 0)

    @given(dags(max_ops=14), st.integers(min_value=1, max_value=6))
    @settings(max_examples=30, deadline=None)
    def test_random_graphs_collision_free(self, graph, ii):
        schedule = _schedule(graph)
        binding = modulo_register_bind(graph, schedule, ii)
        _assert_no_collisions(graph, schedule, binding)
        lower = register_requirement(graph, schedule, ii)
        assert binding.register_count >= lower
