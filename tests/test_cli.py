"""Tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


@pytest.fixture(scope="module")
def project_file(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "project.json"
    assert main(["export-demo", str(path)]) == 0
    return path


class TestInputs:
    def test_inputs_prints_tables(self, capsys):
        assert main(["inputs"]) == 0
        out = capsys.readouterr().out
        assert "add1" in out and "mul3" in out
        assert "311.02" in out  # Table 2 package dimensions


class TestDemo:
    def test_demo_experiment1(self, capsys):
        assert main(["demo", "--experiment", "1", "--partitions", "2"]) == 0
        out = capsys.readouterr().out
        assert "Initiation interval" in out
        assert "Partition P1" in out

    def test_demo_experiment2_enumeration(self, capsys):
        assert main(
            [
                "demo", "--experiment", "2", "--partitions", "3",
                "--heuristic", "enumeration",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "16" in out  # the Table 6 crossover II


class TestProjectCommands:
    def test_export_demo_writes_valid_json(self, project_file):
        data = json.loads(project_file.read_text())
        assert set(data) >= {
            "graph", "library", "clocks", "criteria", "chips",
            "partitions",
        }

    def test_check(self, project_file, capsys):
        assert main(["check", str(project_file)]) == 0
        out = capsys.readouterr().out
        assert "Initiation interval" in out
        assert "Chip occupancy" in out

    def test_predict(self, project_file, capsys):
        assert main(
            ["predict", str(project_file), "--partition", "P1",
             "--limit", "5"]
        ) == 0
        out = capsys.readouterr().out
        assert "predicted implementations" in out
        assert "mW" in out

    def test_predict_unknown_partition_errors(self, project_file,
                                              capsys):
        assert main(
            ["predict", str(project_file), "--partition", "P9"]
        ) == 2
        err = capsys.readouterr().err
        assert "error" in err

    def test_check_missing_file_errors(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert main(["check", str(missing)]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_check_invalid_json_errors(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["check", str(bad)]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "invalid project JSON" in err

    def test_check_malformed_document_errors(self, tmp_path, capsys,
                                             project_file):
        # Well-formed JSON, structurally broken document: a partition
        # entry missing its chip must not surface a raw KeyError.
        data = json.loads(project_file.read_text())
        del data["partitions"][0]["chip"]
        broken = tmp_path / "broken.json"
        broken.write_text(json.dumps(data))
        assert main(["check", str(broken)]) == 3
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "malformed project document" in err

    def test_export_demo_prints_fingerprint(self, tmp_path, capsys):
        out = tmp_path / "demo.json"
        assert main(["export-demo", str(out)]) == 0
        stdout = capsys.readouterr().out
        assert "fingerprint sha256:" in stdout
        from repro.io.project import project_fingerprint

        digest = stdout.split("sha256:")[1].strip()
        assert digest == project_fingerprint(
            json.loads(out.read_text())
        )


class TestCompile:
    def test_compile_example_specs(self, tmp_path, capsys):
        for spec in ("biquad", "moving_average"):
            out_path = tmp_path / f"{spec}.json"
            assert main(
                ["compile", f"examples/specs/{spec}.chop",
                 "-o", str(out_path)]
            ) == 0
            data = json.loads(out_path.read_text())
            assert data["operations"]

    def test_compile_to_stdout(self, tmp_path, capsys):
        spec = tmp_path / "t.chop"
        spec.write_text("input x\ny = x + x\noutput y\n")
        assert main(["compile", str(spec)]) == 0
        out = capsys.readouterr().out
        document = json.loads(out)
        assert document["outputs"] == ["y"]

    def test_compiled_spec_loads_as_project_graph(self, tmp_path):
        spec = tmp_path / "t.chop"
        spec.write_text(
            "graph tiny\ninput a, b\ny = a * b\noutput y\n"
        )
        out_path = tmp_path / "t.json"
        assert main(["compile", str(spec), "-o", str(out_path)]) == 0
        from repro.io.graphs import graph_from_dict

        graph = graph_from_dict(json.loads(out_path.read_text()))
        assert graph.name == "tiny"

    def test_compile_bad_spec_errors(self, tmp_path, capsys):
        spec = tmp_path / "bad.chop"
        spec.write_text("input x\ny = x +\noutput y\n")
        assert main(["compile", str(spec)]) == 3
        assert "error" in capsys.readouterr().err


class TestSearchCommand:
    @pytest.fixture(scope="class")
    def big_project_file(self, tmp_path_factory):
        from repro.experiments import experiment2_session
        from repro.io.project import save_project_file

        path = tmp_path_factory.mktemp("cli-search") / "exp2x3.json"
        save_project_file(
            experiment2_session(partition_count=3), str(path)
        )
        return path

    def test_search_defaults_to_enumeration(self, project_file, capsys):
        assert main(["search", str(project_file)]) == 0
        out = capsys.readouterr().out
        assert "  E  " in out  # the heuristic column

    def test_dry_run_prints_count_and_serial_mode(self, project_file,
                                                  capsys):
        assert main(["search", str(project_file), "--dry-run"]) == 0
        out = capsys.readouterr().out
        assert "total combinations:" in out
        assert "mode: serial" in out
        assert "Initiation interval" not in out  # nothing was searched

    def test_dry_run_prints_shard_plan(self, big_project_file, capsys):
        assert main(
            ["search", str(big_project_file), "--workers", "2",
             "--dry-run"]
        ) == 0
        out = capsys.readouterr().out
        assert "mode: parallel (2 workers" in out
        assert "shard   0: [0," in out

    def test_workers_flag_matches_serial_result(self, big_project_file,
                                                capsys):
        assert main(["search", str(big_project_file)]) == 0
        serial_out = capsys.readouterr().out
        assert main(
            ["search", str(big_project_file), "--workers", "2"]
        ) == 0
        parallel_out = capsys.readouterr().out

        def rows(text):
            return [
                line for line in text.splitlines()
                if "  E  " in line
            ]

        # Identical result rows modulo the CPU-seconds column.
        strip = lambda line: line.split()[:3] + line.split()[4:]
        assert [strip(r) for r in rows(parallel_out)] == [
            strip(r) for r in rows(serial_out)
        ]

    def test_disk_cache_cold_then_warm(self, project_file, tmp_path,
                                       capsys):
        cache_dir = str(tmp_path / "predcache")
        assert main(
            ["search", str(project_file), "--disk-cache", cache_dir]
        ) == 0
        cold = capsys.readouterr().out
        assert "disk cache: miss" in cold
        assert main(
            ["search", str(project_file), "--disk-cache", cache_dir]
        ) == 0
        warm = capsys.readouterr().out
        assert "disk cache: hit" in warm
        assert "2 partition prediction lists seeded" in warm

    def test_check_accepts_engine_flags(self, project_file, capsys):
        assert main(
            ["check", str(project_file), "--heuristic", "enumeration",
             "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "Initiation interval" in out


class TestObservabilityCommands:
    @pytest.fixture(scope="class")
    def big_project_file(self, tmp_path_factory):
        from repro.experiments import experiment2_session
        from repro.io.project import save_project_file

        path = tmp_path_factory.mktemp("cli-obs") / "exp2x3.json"
        save_project_file(
            experiment2_session(partition_count=3), str(path)
        )
        return path

    def test_trace_flag_writes_valid_renderable_trace(
        self, big_project_file, tmp_path, capsys
    ):
        from repro.obs import load_trace_file, validate_trace

        trace_path = tmp_path / "run.jsonl"
        assert main(
            ["check", str(big_project_file), "--heuristic",
             "enumeration", "--workers", "2", "--trace",
             str(trace_path)]
        ) == 0
        out = capsys.readouterr().out
        assert "trace:" in out and "spans" in out

        spans = load_trace_file(str(trace_path))
        assert validate_trace(spans) == []
        names = {span["name"] for span in spans}
        # The acceptance tree: session -> search -> engine run ->
        # every shard -> merge.
        assert {
            "session.check", "session.predict", "search.enumeration",
            "engine.run", "engine.shard", "engine.merge",
        } <= names

        assert main(["trace", "show", str(trace_path)]) == 0
        rendered = capsys.readouterr().out
        assert "session.check" in rendered
        assert "engine.shard[0]" in rendered
        assert "combinations=" in rendered
        assert "ms" in rendered

    def test_profile_flag_prints_samples(self, big_project_file,
                                         capsys):
        assert main(
            ["check", str(big_project_file), "--heuristic",
             "enumeration", "--profile"]
        ) == 0
        out = capsys.readouterr().out
        assert "wall-clock profile:" in out

    def test_trace_show_rejects_bad_files(self, tmp_path, capsys):
        missing = tmp_path / "missing.jsonl"
        assert main(["trace", "show", str(missing)]) == 3

        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("not json at all\n")
        assert main(["trace", "show", str(garbage)]) == 3
        err = capsys.readouterr().err
        assert "error:" in err

        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["trace", "show", str(empty)]) == 3

    def test_explain_command(self, project_file, capsys):
        assert main(["explain", str(project_file)]) == 0
        out = capsys.readouterr().out
        assert "combinations evaluated" in out
        assert "level-1 pruning" in out

    def test_explain_json_output(self, project_file, capsys):
        assert main(["explain", str(project_file), "--json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["evaluated"] == doc["combination_count"] > 0
        assert "constraints" in doc and "level1" in doc


class TestAutoCommand:
    def test_auto_on_a_generated_graph(self, capsys):
        assert main(
            ["auto", "--generate", "chain", "--ops", "80",
             "--chips", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "auto:" in out
        assert "over 2 chips" in out
        assert "cut" in out and "part sizes" in out

    def test_auto_with_replication_and_trace(self, tmp_path, capsys):
        trace = tmp_path / "auto.jsonl"
        out_file = tmp_path / "auto.json"
        assert main(
            ["auto", "--generate", "layered", "--ops", "120",
             "--seed", "7", "--chips", "3", "--replicate",
             "--trace", str(trace), "-o", str(out_file)]
        ) == 0
        out = capsys.readouterr().out
        assert "replication:" in out
        assert trace.exists()
        names = {
            json.loads(line)["name"]
            for line in trace.read_text().splitlines() if line
        }
        assert {
            "auto.partition", "auto.coarsen", "auto.initial",
            "auto.refine", "auto.replicate", "auto.feasibility",
        } <= names
        # the saved project round-trips through `check`
        assert main(["check", str(out_file)]) == 0

    def test_auto_requires_an_input(self, capsys):
        assert main(["auto"]) == 3
        assert "error:" in capsys.readouterr().err

    def test_auto_rejects_unknown_generator(self, capsys):
        with pytest.raises(SystemExit):
            main(["auto", "--generate", "mystery"])
