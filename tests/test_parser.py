"""Tests for the behavioral specification language."""

from __future__ import annotations

import pytest

from repro.dfg.evaluate import evaluate_outputs
from repro.dfg.ops import OpType
from repro.dfg.parser import parse_spec
from repro.errors import SpecificationError


class TestBasics:
    def test_minimal_spec(self):
        graph = parse_spec(
            """
            input x, k
            y = x * k
            output y
            """
        )
        assert graph.op_count() == 1
        assert [v.id for v in graph.primary_outputs()] == ["y"]

    def test_header_sets_name_and_width(self):
        graph = parse_spec(
            """
            graph myfilter width 8
            input x
            y = x + x
            output y
            """
        )
        assert graph.name == "myfilter"
        assert graph.value("x").width == 8

    def test_input_width_override(self):
        graph = parse_spec(
            """
            input a, b width 4
            y = a + b
            output y
            """
        )
        assert graph.value("a").width == 4
        assert graph.value("b").width == 4

    def test_comments_and_blank_lines(self):
        graph = parse_spec(
            """
            # a comment
            input x   # trailing comment

            y = x + x
            output y
            """
        )
        assert graph.op_count() == 1

    def test_empty_spec_rejected(self):
        with pytest.raises(SpecificationError, match="empty"):
            parse_spec("   \n# only a comment\n")


class TestExpressions:
    def test_precedence(self):
        graph = parse_spec(
            """
            input a, b, c
            y = a + b * c
            output y
            """
        )
        outputs = evaluate_outputs(graph, {"a": 1, "b": 2, "c": 3})
        assert outputs["y"] == 7  # not (1+2)*3

    def test_parentheses(self):
        graph = parse_spec(
            """
            input a, b, c
            y = (a + b) * c
            output y
            """
        )
        outputs = evaluate_outputs(graph, {"a": 1, "b": 2, "c": 3})
        assert outputs["y"] == 9

    def test_all_operators(self):
        graph = parse_spec(
            """
            input a, b
            s = a + b
            d = a - b
            p = a * b
            q = a / b
            c = a < b
            sh = a << b
            an = a & b
            o = a | b
            output s, d, p, q, c, sh, an, o
            """
        )
        counts = graph.op_counts_by_type()
        assert counts[OpType.ADD] == 1
        assert counts[OpType.DIV] == 1
        assert counts[OpType.SHIFT] == 1
        outputs = evaluate_outputs(graph, {"a": 12, "b": 3})
        assert outputs["s"] == 15 and outputs["q"] == 4
        assert outputs["c"] == 0 and outputs["an"] == 0

    def test_constants_become_inputs(self):
        graph = parse_spec(
            """
            input x
            y = x * 3
            output y
            """
        )
        assert any(
            v.id == "const_3" for v in graph.primary_inputs()
        )
        outputs = evaluate_outputs(graph, {"x": 5, "const_3": 3})
        assert outputs["y"] == 15

    def test_undefined_name_rejected(self):
        with pytest.raises(SpecificationError, match="undefined"):
            parse_spec("input x\ny = x + ghost\noutput y")

    def test_trailing_tokens_rejected(self):
        with pytest.raises(SpecificationError, match="trailing"):
            parse_spec("input x\ny = x + x x\noutput y")


class TestSsaShadowing:
    def test_reassignment_shadows(self):
        graph = parse_spec(
            """
            input x
            acc = x + x
            acc = acc * x
            output acc
            """
        )
        outputs = evaluate_outputs(graph, {"x": 3})
        assert outputs[
            [v.id for v in graph.primary_outputs()][0]
        ] == (3 + 3) * 3


class TestMemory:
    def test_read_and_write(self):
        graph = parse_spec(
            """
            input addr
            memory M
            v = read M[addr]
            doubled = v + v
            write M, doubled
            output doubled
            """
        )
        counts = graph.op_counts_by_type()
        assert counts[OpType.MEM_READ] == 1
        assert counts[OpType.MEM_WRITE] == 1
        memory = {"M": [5, 6, 7]}
        outputs = evaluate_outputs(graph, {"addr": 2}, memory)
        assert outputs["doubled"] == 14
        assert memory["M"][-1] == 14

    def test_undeclared_memory_rejected(self):
        with pytest.raises(SpecificationError, match="undeclared"):
            parse_spec("input a\nv = read M[a]\noutput v")
        with pytest.raises(SpecificationError, match="undeclared"):
            parse_spec("input a\nwrite M, a\noutput a")


class TestRepeat:
    def test_unrolls_accumulator(self):
        graph = parse_spec(
            """
            input x, acc
            repeat 4 as i:
                acc = acc + x
            end
            output acc
            """
        )
        assert graph.op_counts_by_type()[OpType.ADD] == 4
        outputs = evaluate_outputs(graph, {"x": 2, "acc": 1})
        assert list(outputs.values())[0] == 9

    def test_index_substitution(self):
        graph = parse_spec(
            """
            input x0, x1, x2, acc
            repeat 3 as i:
                acc = acc + x$i
            end
            output acc
            """
        )
        outputs = evaluate_outputs(
            graph, {"x0": 1, "x1": 2, "x2": 4, "acc": 0}
        )
        assert list(outputs.values())[0] == 7

    def test_nested_repeat(self):
        graph = parse_spec(
            """
            input x, acc
            repeat 2 as i:
                repeat 2 as j:
                    acc = acc + x
                end
            end
            output acc
            """
        )
        assert graph.op_counts_by_type()[OpType.ADD] == 4

    def test_unterminated_repeat_rejected(self):
        with pytest.raises(SpecificationError, match="without 'end'"):
            parse_spec(
                "input x\nrepeat 2 as i:\n x = x + x\noutput x"
            )

    def test_stray_end_rejected(self):
        with pytest.raises(SpecificationError, match="without matching"):
            parse_spec("input x\nend\noutput x")


class TestFullPipeline:
    def test_spec_through_chop(self):
        """A parsed spec drives the whole partitioner."""
        from repro.bad.styles import (
            ArchitectureStyle, ClockScheme, OperationTiming,
        )
        from repro.chips.presets import mosis_package
        from repro.core.chop import ChopSession
        from repro.core.feasibility import FeasibilityCriteria
        from repro.core.schemes import horizontal_cut
        from repro.library.presets import extended_library

        graph = parse_spec(
            """
            graph fir4
            input x0, x1, x2, x3, h0, h1, h2, h3
            p0 = x0 * h0
            p1 = x1 * h1
            p2 = x2 * h2
            p3 = x3 * h3
            y = (p0 + p1) + (p2 + p3)
            output y
            """
        )
        session = ChopSession(
            graph=graph,
            library=extended_library(),
            clocks=ClockScheme(300.0),
            style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=60_000.0, delay_ns=60_000.0
            ),
        )
        parts = horizontal_cut(graph, 2)
        session.add_chip("chip1", mosis_package(2))
        session.add_chip("chip2", mosis_package(2))
        session.set_partitions(
            parts, {"P1": "chip1", "P2": "chip2"}
        )
        result = session.check("iterative")
        assert result.feasible
