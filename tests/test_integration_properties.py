"""End-to-end property tests over random specifications.

Each random DAG is pushed through the whole CHOP pipeline — prediction,
level-1 pruning, search, integration, feasibility — and structural
invariants of the result are checked.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.errors import ChopError, PartitioningError
from repro.library.presets import extended_library
from tests.strategies import dags

_RELAXED = FeasibilityCriteria(performance_ns=1e9, delay_ns=1e9)


def _session_for(graph, count=2):
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=_RELAXED,
    )
    partitions = horizontal_cut(graph, count)
    for index, partition in enumerate(partitions):
        session.add_chip(f"chip{index + 1}", mosis_package(2))
    session.set_partitions(
        partitions,
        {p.name: f"chip{i + 1}" for i, p in enumerate(partitions)},
    )
    return session


@given(dags(max_ops=14))
@settings(
    max_examples=25, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_single_partition_pipeline_invariants(graph):
    session = _session_for(graph, count=1)
    result = session.check("iterative")
    assert result.trials >= 1
    for design in result.feasible:
        system = design.system
        selected = design.selection["P1"]
        # The system can never beat its only partition.
        assert system.ii_main >= selected.ii_main
        assert system.delay_main >= selected.latency_main
        # The adjusted clock includes overhead.
        assert system.clock_cycle_ns.ml >= 300.0
        # Chip accounting covers the PU.
        usage = system.chip_usage["chip1"]
        assert usage.total_area.ml >= selected.area_total.ml
        assert usage.power_mw.ml >= selected.power_mw.ml


@given(dags(max_ops=18))
@settings(
    max_examples=20, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_two_partition_pipeline_invariants(graph):
    try:
        session = _session_for(graph, count=2)
    except PartitioningError:
        return  # too shallow to cut in two — fine
    result = session.check("iterative")
    for design in result.feasible:
        system = design.system
        # Rate compatibility held for every selected implementation.
        for prediction in design.selection.values():
            assert prediction.ii_main <= system.ii_main
            if prediction.pipelined:
                assert prediction.ii_main == system.ii_main
        # Transfers never exceed the initiation interval (no clashes).
        for estimate in system.transfers.values():
            assert estimate.duration_main <= system.ii_main
        # The urgency schedule respects the task graph.
        schedule = design.system.schedule
        assert schedule.makespan == system.delay_main


@given(dags(max_ops=14))
@settings(
    max_examples=15, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_heuristics_agree_on_feasibility(graph):
    session = _session_for(graph, count=1)
    enum_result = session.check("enumeration")
    iter_result = session.check("iterative")
    # Under relaxed criteria both heuristics either find designs or
    # neither does.
    assert bool(enum_result.feasible) == bool(iter_result.feasible)
    if enum_result.feasible:
        assert (
            iter_result.best().ii_main == enum_result.best().ii_main
        )
