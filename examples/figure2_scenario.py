"""The paper's Figure 2 configuration, end to end.

Figure 2 shows "an example partitioning consisting of 5 partitions
(P1 - P5), and 2 memory units (M_A and M_B) as a four-chip design",
illustrating that

* multiple partitions can share a chip,
* memory blocks can sit on the same chips as partitions,
* and cyclic data flow is allowed **among chips** (Chip 4 hosts two
  partitions whose chain P3 -> P5 returns data to a chip it already
  received data from) while the partition-level graph stays acyclic.

This example constructs a pipeline with that exact topology, checks it
with CHOP, and prints the task graph (the paper's Figure 3) plus the
feasibility outcome.

Run:  python examples/figure2_scenario.py
"""

from __future__ import annotations

from repro import (
    ArchitectureStyle,
    ChopSession,
    ClockScheme,
    FeasibilityCriteria,
    GraphBuilder,
    MemoryModule,
    OperationTiming,
    Partition,
    extended_library,
    mosis_package,
)
from repro.core.tasks import build_task_graph
from repro.reporting import design_guidelines


def five_stage_pipeline():
    """A processing chain with five natural stages.

    P1 reads a window from M_A and scales it; P2 and P3 transform
    different halves; P4 merges and writes to M_B; P5 post-processes
    P3's stream — giving the Figure 2 dependency shape
    P1 -> {P2, P3}, {P2, P3} -> P4, P3 -> P5.
    """
    b = GraphBuilder("figure2-pipeline", default_width=16)
    addresses = [b.input(f"addr{i}") for i in range(4)]
    gains = [b.input(f"g{i}") for i in range(4)]
    offset = b.input("offset")

    # P1: fetch and scale.
    fetched = [b.mem_read(addresses[i], "M_A") for i in range(4)]
    scaled = [b.mul(fetched[i], gains[i]) for i in range(4)]

    # P2: sum-side transform of the first half.
    s1 = b.add(scaled[0], scaled[1])
    s2 = b.add(s1, offset)
    s3 = b.mul(s2, gains[0])

    # P3: difference-side transform of the second half.
    d1 = b.sub(scaled[2], scaled[3])
    d2 = b.mul(d1, gains[1])
    d3 = b.add(d2, offset)

    # P4: merge and store.
    merged = b.add(s3, d3, name="merged")
    b.mem_write(merged, "M_B")
    b.output(merged)

    # P5: post-process P3's stream.
    post = b.mul(d3, gains[2], name="post")
    b.output(post)

    stages = {
        "P1": [
            op_id
            for op_id in b._operations  # test/demo: builder internals
            if b._operations[op_id].op_type.value in ("mem_read",)
        ]
        + [v_op(b, v) for v in scaled],
        "P2": [v_op(b, s1), v_op(b, s2), v_op(b, s3)],
        "P3": [v_op(b, d1), v_op(b, d2), v_op(b, d3)],
        "P4": [v_op(b, merged)]
        + [
            op_id
            for op_id in b._operations
            if b._operations[op_id].op_type.value == "mem_write"
        ],
        "P5": [v_op(b, post)],
    }
    return b.build(), stages


def v_op(builder: GraphBuilder, value_id: str) -> str:
    """Operation producing a value (builder-internal helper)."""
    producer = builder._values[value_id].producer
    assert producer is not None
    return producer


def main() -> None:
    graph, stages = five_stage_pipeline()
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0, dp_multiplier=1, transfer_multiplier=1),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=60_000.0, delay_ns=120_000.0
        ),
        memories=[
            MemoryModule("M_A", words=64, width_bits=16,
                         access_time_ns=250.0),
            MemoryModule("M_B", words=64, width_bits=16,
                         access_time_ns=250.0),
        ],
    )
    # Four chips; chip4 hosts two partitions (P3 and P5), as in Figure 2.
    for index in range(1, 5):
        session.add_chip(f"chip{index}", mosis_package(2))
    session.assign_memory("M_A", "chip1")
    session.assign_memory("M_B", "chip2")
    assignment = {
        "P1": "chip1",
        "P2": "chip2",
        "P3": "chip4",
        "P4": "chip3",
        "P5": "chip4",
    }
    session.set_partitions(
        [Partition.of(name, ops) for name, ops in stages.items()],
        assignment,
    )

    partitioning = session.partitioning()
    print("Partition dependencies (acyclic, as section 2.3 requires):")
    for src, dst in partitioning.partition_dependencies():
        print(f"  {src} -> {dst}")
    print()
    task_graph = build_task_graph(partitioning)
    print("Task graph (the paper's Figure 3):")
    for name in task_graph.topological_order():
        task = task_graph.tasks[name]
        chips = "/".join(task.chips) if task.chips else "-"
        bits = f"{task.bits} bits" if task.moves_data else "PU"
        print(f"  {name:<16} [{bits:>9}] on {chips}")
    print()

    result = session.check("iterative")
    best = result.best()
    if best is None:
        print("No feasible implementation under these constraints.")
        return
    print(
        f"Feasible: II {best.ii_main}, delay {best.delay_main}, clock "
        f"{best.clock_cycle_ns:.0f} ns "
        f"({result.feasible_trials} of {result.trials} trials)"
    )
    print()
    print(design_guidelines(best))


if __name__ == "__main__":
    main()
