"""Byte-identity of the vectorized kernel against the scalar oracle.

The contract of ``kernel="vectorized"`` is that it changes *nothing*
observable: on every project shape the enumeration returns a
``SearchResult`` whose ``to_dict()`` document (timing removed) is
byte-for-byte equal to the scalar reference — same feasible designs in
the same order, same counters, same best design.  This holds because
the kernels only ever compute sound proofs of infeasibility and hand
every survivor to the unchanged scalar evaluator; these tests pin the
contract end to end, serial and pooled.  CI runs this module under both
``fork`` and ``spawn`` via ``$CHOP_START_METHOD``.
"""

from __future__ import annotations

import json

import pytest
from hypothesis import HealthCheck, given, settings

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.engine import EvaluationEngine
from repro.errors import PartitioningError
from repro.library.presets import extended_library
from tests.strategies import dags

_RELAXED = FeasibilityCriteria(performance_ns=1e9, delay_ns=1e9)
#: Criteria tight enough that the verdict screens kill combinations on
#: most generated graphs, exercising the interesting kill paths.
_TIGHT = FeasibilityCriteria(performance_ns=8_000.0, delay_ns=8_000.0)


def _session_for(graph, count=2, criteria=_RELAXED):
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=criteria,
    )
    partitions = horizontal_cut(graph, count)
    for index, partition in enumerate(partitions):
        session.add_chip(f"chip{index + 1}", mosis_package(2))
    session.set_partitions(
        partitions,
        {p.name: f"chip{i + 1}" for i, p in enumerate(partitions)},
    )
    return session


def result_bytes(result) -> bytes:
    """The canonical result document with timing jitter removed."""
    doc = result.to_dict()
    doc.pop("cpu_seconds", None)
    return json.dumps(doc, sort_keys=True).encode()


def assert_identical(session, **check_kwargs):
    scalar = session.check(
        "enumeration", kernel="scalar", **check_kwargs
    )
    vectorized = session.check(
        "enumeration", kernel="vectorized", **check_kwargs
    )
    assert result_bytes(scalar) == result_bytes(vectorized)
    return scalar


# ----------------------------------------------------------------------
# hypothesis sweep: serial path
# ----------------------------------------------------------------------
@given(dags(max_ops=14))
@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_serial_identity_relaxed(graph):
    session = _session_for(graph, count=1)
    assert_identical(session)


@given(dags(max_ops=16))
@settings(
    max_examples=12, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_serial_identity_two_partitions_tight(graph):
    try:
        session = _session_for(graph, count=2, criteria=_TIGHT)
    except PartitioningError:
        return  # too shallow to cut in two — fine
    assert_identical(session)


@given(dags(max_ops=14))
@settings(
    max_examples=8, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_serial_identity_unpruned(graph):
    """prune=False keeps the hopeless predictions: the structural
    screens do real work and must still agree byte-for-byte."""
    session = _session_for(graph, count=1, criteria=_TIGHT)
    assert_identical(session, prune=False)


# ----------------------------------------------------------------------
# hypothesis sweep: pooled engine path
# ----------------------------------------------------------------------
@given(dags(max_ops=14))
@settings(
    max_examples=6, deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_engine_identity(graph):
    """A pooled vectorized run equals serial scalar, shard merge
    included."""
    try:
        session = _session_for(graph, count=2)
    except PartitioningError:
        return
    serial = session.check("enumeration", kernel="scalar")
    engine = EvaluationEngine(
        workers=2, min_combinations=1, kernel="vectorized"
    )
    pooled = session.check("enumeration", engine=engine)
    assert result_bytes(serial) == result_bytes(pooled)
    assert engine.stats()["kernel"] == "vectorized"


# ----------------------------------------------------------------------
# fixed edge cases
# ----------------------------------------------------------------------
class TestEdgeCases:
    def test_per_run_kernel_override_beats_engine_default(
        self, ar_graph
    ):
        session = _session_for(ar_graph, count=2)
        engine = EvaluationEngine(
            workers=2, min_combinations=1, kernel="scalar"
        )
        default = session.check("enumeration", engine=engine)
        overridden = session.check(
            "enumeration", engine=engine, kernel="vectorized"
        )
        assert result_bytes(default) == result_bytes(overridden)

    def test_keep_all_falls_back_to_scalar_identically(self, ar_graph):
        """keep_all needs the full design space, which only the scalar
        walk records — the vectorized request must still serve it."""
        session = _session_for(ar_graph, count=1)
        scalar = session.check(
            "enumeration", kernel="scalar", keep_all=True
        )
        vectorized = session.check(
            "enumeration", kernel="vectorized", keep_all=True
        )
        assert result_bytes(scalar) == result_bytes(vectorized)

    def test_infeasible_everywhere(self, ar_graph):
        """Criteria nothing satisfies: both kernels report the same
        empty result and identical counters.  ``prune=False`` keeps the
        hopeless predictions alive so the search actually runs."""
        session = _session_for(
            ar_graph,
            count=1,
            criteria=FeasibilityCriteria(
                performance_ns=1.0, delay_ns=1.0
            ),
        )
        scalar = assert_identical(session, prune=False)
        assert scalar.feasible == []

    def test_iterative_heuristic_ignores_kernel(self, ar_graph):
        session = _session_for(ar_graph, count=1)
        a = session.check("iterative", kernel="scalar")
        b = session.check("iterative", kernel="vectorized")
        assert result_bytes(a) == result_bytes(b)
