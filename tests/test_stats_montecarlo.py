"""Monte Carlo validation of the statistical environment.

The triangular CDF, moments and constraint probabilities are checked
against empirical sampling — the feasibility analysis rests on these
being right.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.stats import (
    ConstraintCheck,
    Triplet,
    prob_le,
    triangular_cdf,
    triangular_mean,
    triangular_variance,
)

RNG = np.random.default_rng(1991)
SAMPLES = 200_000


def _sample(lb, ml, ub, size=SAMPLES):
    return RNG.triangular(lb, ml, ub, size)


class TestAgainstSampling:
    @pytest.mark.parametrize(
        "lb,ml,ub",
        [
            (0.0, 1.0, 2.0),
            (10.0, 12.0, 30.0),
            (-5.0, 0.0, 1.0),
            (0.0, 0.0, 4.0),   # mode at the lower edge
            (0.0, 4.0, 4.0),   # mode at the upper edge
        ],
    )
    def test_cdf_matches_empirical(self, lb, ml, ub):
        samples = _sample(lb, ml, ub)
        for q in (0.1, 0.25, 0.5, 0.75, 0.9):
            x = lb + (ub - lb) * q
            analytic = triangular_cdf(x, lb, ml, ub)
            empirical = float(np.mean(samples <= x))
            assert analytic == pytest.approx(empirical, abs=0.01)

    @pytest.mark.parametrize(
        "lb,ml,ub",
        [(0.0, 1.0, 2.0), (10.0, 12.0, 30.0), (-5.0, 0.0, 1.0)],
    )
    def test_moments_match_empirical(self, lb, ml, ub):
        samples = _sample(lb, ml, ub)
        assert triangular_mean(lb, ml, ub) == pytest.approx(
            float(np.mean(samples)), abs=0.02 * (ub - lb)
        )
        assert triangular_variance(lb, ml, ub) == pytest.approx(
            float(np.var(samples)), rel=0.05
        )

    def test_prob_le_matches_empirical(self):
        value = Triplet(80.0, 95.0, 130.0)
        samples = _sample(value.lb, value.ml, value.ub)
        for limit in (85.0, 100.0, 120.0):
            assert prob_le(value, limit) == pytest.approx(
                float(np.mean(samples <= limit)), abs=0.01
            )

    def test_constraint_confidence_semantics(self):
        """An 80%-confidence check passes iff at least 80% of sampled
        realizations satisfy the constraint."""
        value = Triplet(80.0, 95.0, 130.0)
        samples = _sample(value.lb, value.ml, value.ub)
        for limit in np.linspace(85.0, 128.0, 10):
            check = ConstraintCheck.upper_bound(
                "delay", value, float(limit), confidence=0.8
            )
            empirical = float(np.mean(samples <= limit))
            if abs(empirical - 0.8) > 0.01:  # away from the boundary
                assert check.passed == (empirical >= 0.8)


class TestSumApproximation:
    def test_boundwise_sum_brackets_true_sum(self):
        """The bound-wise triplet sum is conservative: the true sum
        distribution's support is inside the summed bounds, and the
        summed most-likely tracks the mean of sums to within the
        asymmetry of the parts."""
        parts = [
            Triplet(10.0, 14.0, 25.0),
            Triplet(5.0, 6.0, 9.0),
            Triplet(100.0, 120.0, 160.0),
        ]
        total = Triplet.sum(parts)
        sampled = sum(_sample(p.lb, p.ml, p.ub) for p in parts)
        assert float(sampled.min()) >= total.lb - 1e-9
        assert float(sampled.max()) <= total.ub + 1e-9
        assert total.lb <= float(np.mean(sampled)) <= total.ub
