"""repro.resilience — retries, fault injection, graceful degradation.

The serving stack's answer to *what happens when things break*:

* :mod:`~repro.resilience.retry` — :class:`RetryPolicy` (exponential
  backoff + jitter + retryable-exception classification) and the
  :class:`RetryStats` ledger behind the ``retries`` metrics block;
* :mod:`~repro.resilience.faults` — the ``$CHOP_FAULTS`` deterministic
  fault-injection harness wired into the engine workers, the disk
  cache and service job bodies;
* :mod:`~repro.resilience.degrade` — :class:`SoftDeadline`, the
  soft-stop hook behind ``check(soft_deadline_s=…)`` partial verdicts.

The full fault → behavior → status → metric contract lives in
``docs/resilience.md``.
"""

from repro.resilience.degrade import SoftDeadline
from repro.resilience.faults import (
    FAULTS_ENV,
    FaultPlan,
    InjectedFault,
    active_plan,
    maybe_inject,
    reset_counters,
)
from repro.resilience.retry import RetryPolicy, RetryStats

__all__ = [
    "FAULTS_ENV",
    "FaultPlan",
    "InjectedFault",
    "RetryPolicy",
    "RetryStats",
    "SoftDeadline",
    "active_plan",
    "maybe_inject",
    "reset_counters",
]
