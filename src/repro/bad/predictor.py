"""The BAD predictor facade.

:class:`BADPredictor` generates the per-partition prediction lists CHOP
searches over.  For one partition it enumerates

* every module set the library offers for the partition's operation
  types (filtered by the datapath cycle under the single-cycle style),
* every allocation along the serial-parallel frontier,
* the nonpipelined design, and the tightest pipelined design each
  allocation sustains (a pipelined design run slower than its hardware
  allows is dominated by construction, so BAD does not emit it),

and predicts the full area breakdown, timing and memory bandwidth for
each, deduplicating identical design points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.bad.allocation import (
    allocation_candidates,
    mux_requirement,
    partition_resource_model,
    register_bits,
    register_requirement,
)
from repro.bad.controller import PlaParameters, datapath_controller
from repro.bad.power import PowerParameters, power_estimate
from repro.bad.prediction import AreaBreakdown, DesignPrediction
from repro.bad.scheduling import Schedule, list_schedule
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.bad.wiring import WiringParameters, wiring_estimate
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import MEMORY_OP_TYPES, OpType
from repro.errors import PredictionError
from repro.library.library import ComponentLibrary, ModuleSet
from repro.memory.access import memory_access_profile
from repro.memory.module import MemoryModule
from repro.stats import Triplet
from repro.units import ceil_div, cycles_for_delay


@dataclass(frozen=True, slots=True)
class PredictorParameters:
    """Tunable constants of the prediction model.

    The relative bounds widen each most-likely estimate into its triplet;
    functional units are known library data (narrow), registers and muxes
    depend on binding details (moderate), wiring is pre-layout (wide, set
    in :class:`~repro.bad.wiring.WiringParameters`).
    """

    max_total_units: int = 64
    functional_rel_lb: float = 0.98
    functional_rel_ub: float = 1.04
    storage_rel_lb: float = 0.92
    storage_rel_ub: float = 1.10
    #: Discount on the naive mux-tree count for binder wire sharing; see
    #: :func:`repro.bad.allocation.mux_requirement`.
    mux_sharing_factor: float = 0.55
    #: Allow dependent single-cycle operations to chain within one
    #: datapath cycle.  Off, every operation is aligned to a cycle
    #: boundary — the ablation showing why a slow datapath clock wastes
    #: fast adders.
    enable_chaining: bool = True
    pla: PlaParameters = field(default_factory=PlaParameters)
    wiring: WiringParameters = field(default_factory=WiringParameters)
    power: PowerParameters = field(default_factory=PowerParameters)
    #: Include design-for-test overhead (the paper's section-5
    #: testability extension): one scan mux per register bit, extra
    #: controller terms for scan control, and a small clock-path delay.
    scan_design: bool = False
    #: Extra product terms the scan controller needs, as a fraction of
    #: the base controller's terms.
    scan_term_fraction: float = 0.05
    #: Delay the scan mux adds in front of every register, ns.
    scan_delay_ns: float = 1.5


class BADPredictor:
    """Behavioral area-delay predictor for one library/style/clock setup."""

    def __init__(
        self,
        library: ComponentLibrary,
        clocks: ClockScheme,
        style: ArchitectureStyle,
        memories: Optional[Mapping[str, MemoryModule]] = None,
        params: Optional[PredictorParameters] = None,
    ) -> None:
        self.library = library
        self.clocks = clocks
        self.style = style
        self.memories = dict(memories or {})
        self.params = params or PredictorParameters()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def predict_partition(
        self,
        graph: DataFlowGraph,
        op_ids: Optional[Iterable[str]] = None,
        name: str = "P1",
        input_arrivals: Optional[Mapping[str, int]] = None,
    ) -> List[DesignPrediction]:
        """All predicted implementations of one partition.

        ``op_ids`` selects the partition's operations; ``None`` means the
        whole graph.  ``input_arrivals`` optionally maps primary-input
        value ids to arrival times in datapath cycles (the section-5
        extension); by default all inputs are available at cycle 0.
        Returns predictions sorted by the paper's ordering (initiation
        interval, then delay), deduplicated on the design point (module
        set, operators, II, latency, style).
        """
        sub = (
            graph.subgraph_ops(op_ids) if op_ids is not None else graph
        )
        if sub.op_count() == 0:
            raise PredictionError(f"partition {name!r} is empty")
        ready = self._ready_times(sub, input_arrivals)
        op_class, counts = partition_resource_model(sub)

        predictions: Dict[Tuple, DesignPrediction] = {}
        # Module sets with identical cycle counts and (when chaining)
        # identical delays produce identical schedules; cache them so a
        # rich library does not re-run the list scheduler needlessly.
        schedule_cache: Dict[Tuple, Schedule] = {}
        for module_set in self._module_sets(sub):
            duration = self._durations(sub, module_set)
            delay_ns, cycle_ns = self._chaining_model(sub, module_set)
            if duration and max(duration.values()) > 1:
                # A multi-cycle memory access forbids chaining alignment.
                delay_ns, cycle_ns = None, None
            busy_cycles: Dict[str, int] = {}
            for op_id, cycles in duration.items():
                cls = op_class[op_id]
                busy_cycles[cls] = busy_cycles.get(cls, 0) + cycles
            timing_key: Tuple = (
                tuple(sorted(duration.items())),
                tuple(sorted(delay_ns.items())) if delay_ns else None,
            )
            for allocation in allocation_candidates(
                counts, self.params.max_total_units, busy_cycles=busy_cycles
            ):
                capacities = self._capacities(allocation)
                cache_key = (
                    timing_key, tuple(sorted(capacities.items()))
                )
                schedule = schedule_cache.get(cache_key)
                if schedule is None:
                    schedule = list_schedule(
                        sub, duration, op_class, capacities,
                        delay_ns=delay_ns, cycle_ns=cycle_ns,
                        ready=ready,
                    )
                    schedule_cache[cache_key] = schedule
                for prediction in self._designs_for_schedule(
                    name, sub, module_set, allocation, schedule
                ):
                    key = self._dedup_key(prediction)
                    existing = predictions.get(key)
                    if (
                        existing is None
                        or prediction.area_total.ml < existing.area_total.ml
                    ):
                        predictions[key] = prediction
        result = sorted(predictions.values(), key=DesignPrediction.sort_key)
        if not result:
            raise PredictionError(
                f"no implementations predicted for partition {name!r}"
            )
        return result

    # ------------------------------------------------------------------
    # enumeration helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _ready_times(
        sub: DataFlowGraph,
        input_arrivals: Optional[Mapping[str, int]],
    ) -> Optional[Dict[str, int]]:
        """Per-operation earliest starts from input arrival times."""
        if not input_arrivals:
            return None
        known = {v.id for v in sub.primary_inputs()}
        unknown = set(input_arrivals) - known
        if unknown:
            raise PredictionError(
                f"arrival times reference non-input values: "
                f"{sorted(unknown)[:5]}"
            )
        ready: Dict[str, int] = {}
        for value_id, arrival in input_arrivals.items():
            if arrival < 0:
                raise PredictionError(
                    f"input {value_id!r} has negative arrival time"
                )
            for consumer in sub.consumers(value_id):
                ready[consumer] = max(ready.get(consumer, 0), arrival)
        return ready

    def _module_sets(self, sub: DataFlowGraph) -> List[ModuleSet]:
        compute_types = sorted(
            {
                op.op_type
                for op in sub
                if op.op_type not in MEMORY_OP_TYPES
            },
            key=lambda t: t.value,
        )
        if not compute_types:
            # A pure-memory partition still needs a (trivial) module set.
            return [ModuleSet.of({})]
        max_delay = None
        if self.style.timing is OperationTiming.SINGLE_CYCLE:
            max_delay = self.clocks.dp_cycle_ns
        return self.library.module_sets(compute_types, max_delay)

    def _durations(
        self, sub: DataFlowGraph, module_set: ModuleSet
    ) -> Dict[str, int]:
        dp = self.clocks.dp_cycle_ns
        duration: Dict[str, int] = {}
        for op in sub:
            if op.op_type in MEMORY_OP_TYPES:
                module = self.memories.get(op.memory_block or "")
                if module is None:
                    raise PredictionError(
                        f"operation {op.id!r} accesses unknown memory block "
                        f"{op.memory_block!r}"
                    )
                duration[op.id] = cycles_for_delay(module.access_time_ns, dp)
                continue
            component = module_set.component(op.op_type)
            if self.style.timing is OperationTiming.SINGLE_CYCLE:
                duration[op.id] = 1
            else:
                duration[op.id] = cycles_for_delay(component.delay_ns, dp)
        return duration

    def _chaining_model(
        self, sub: DataFlowGraph, module_set: ModuleSet
    ) -> Tuple[Optional[Dict[str, float]], Optional[float]]:
        """Per-operation delays for single-cycle chaining, if applicable.

        Under the single-cycle style a long datapath cycle would waste
        most of its span on a fast adder; BAD chains dependent operations
        within the cycle instead ("additional delays introduced to the
        clock cycle" are handled separately).  The multi-cycle style never
        chains — operations are aligned to cycle boundaries.
        """
        if self.style.timing is not OperationTiming.SINGLE_CYCLE:
            return None, None
        if not self.params.enable_chaining:
            return None, None
        delays: Dict[str, float] = {}
        for op in sub:
            if op.op_type in MEMORY_OP_TYPES:
                module = self.memories.get(op.memory_block or "")
                assert module is not None  # checked in _durations
                delays[op.id] = module.access_time_ns
            else:
                delays[op.id] = module_set.component(op.op_type).delay_ns
        return delays, self.clocks.dp_cycle_ns

    def _capacities(self, allocation: Mapping[str, int]) -> Dict[str, int]:
        capacities: Dict[str, int] = {}
        for cls, units in allocation.items():
            if cls.startswith("mem:"):
                block = cls[len("mem:") :]
                module = self.memories.get(block)
                if module is None:
                    raise PredictionError(
                        f"unknown memory block {block!r} in allocation"
                    )
                capacities[cls] = min(units, module.ports)
            else:
                capacities[cls] = units
        return capacities

    def _designs_for_schedule(
        self,
        name: str,
        sub: DataFlowGraph,
        module_set: ModuleSet,
        allocation: Mapping[str, int],
        schedule: Schedule,
    ) -> List[DesignPrediction]:
        designs: List[DesignPrediction] = []
        latency = max(schedule.latency, 1)
        if self.style.allow_nonpipelined:
            designs.append(
                self._build_prediction(
                    name, sub, module_set, allocation, schedule,
                    ii_dp=latency, pipelined=False,
                )
            )
        if self.style.allow_pipelined and latency > 1:
            ii = self._min_pipeline_ii(schedule)
            if ii < latency:
                designs.append(
                    self._build_prediction(
                        name, sub, module_set, allocation, schedule,
                        ii_dp=ii, pipelined=True,
                    )
                )
        return designs

    @staticmethod
    def _min_pipeline_ii(schedule: Schedule) -> int:
        """Smallest initiation interval the allocation sustains.

        Work conservation bounds the interval from below: a class with
        ``busy`` unit-cycles on ``cap`` units needs ``ceil(busy/cap)``
        cycles per iteration, so the scan starts there instead of at 1.
        Modulo feasibility is not monotone in the interval, so a bounded
        window above the bound is probed; past it the nonpipelined
        design (always emitted separately) covers the point.
        """
        latency = max(schedule.latency, 1)
        busy: Dict[str, int] = {}
        for op_id, begin in schedule.start.items():
            cls = schedule.resource_class[op_id]
            busy[cls] = busy.get(cls, 0) + schedule.duration[op_id]
        lower = max(
            (
                ceil_div(total, schedule.capacities[cls])
                for cls, total in busy.items()
            ),
            default=1,
        )
        window = 128
        for ii in range(max(1, lower), min(latency, lower + window) + 1):
            if schedule.pipeline_feasible(ii):
                return ii
        return latency

    # ------------------------------------------------------------------
    # prediction assembly
    # ------------------------------------------------------------------
    def _build_prediction(
        self,
        name: str,
        sub: DataFlowGraph,
        module_set: ModuleSet,
        allocation: Mapping[str, int],
        schedule: Schedule,
        ii_dp: int,
        pipelined: bool,
    ) -> DesignPrediction:
        params = self.params
        width = self._dominant_width(sub)
        op_class, _counts = partition_resource_model(sub)

        # Charge the units the schedule actually needs, not the raw
        # allocation: chaining and slack often leave allocated units
        # never used concurrently, and synthesis instantiates only the
        # peak (pipelined designs peak across overlapped iterations).
        if pipelined:
            effective = schedule.pipeline_capacities(ii_dp)
        else:
            profile = schedule.usage_profile()
            effective = {
                cls: max(usage, default=0) or 1
                for cls, usage in profile.items()
            }

        interval = ii_dp if pipelined else max(schedule.latency, 1)
        reg_words = register_requirement(sub, schedule, interval)
        reg_bits = register_bits(sub, schedule, interval)
        muxes = mux_requirement(
            sub, effective, op_class, reg_words, width,
            sharing_factor=params.mux_sharing_factor,
        )
        if params.scan_design:
            # Design-for-test: a scan path threads every register bit
            # through a 2:1 mux.
            muxes += reg_bits

        functional_ml = 0.0
        operator_count = 0
        for cls, units in effective.items():
            if cls.startswith("mem:"):
                continue  # memory area belongs to the memory block
            component = module_set.component(OpType(cls))
            functional_ml += units * component.area_for_width(width)
            operator_count += units
        functional = Triplet.spread(
            functional_ml, params.functional_rel_lb, params.functional_rel_ub
        )
        registers = Triplet.spread(
            self.library.register.area_for_bits(reg_bits),
            params.storage_rel_lb,
            params.storage_rel_ub,
        ) if reg_bits else Triplet.zero()
        multiplexers = Triplet.spread(
            self.library.mux.area_for_bits(muxes),
            params.storage_rel_lb,
            params.storage_rel_ub,
        ) if muxes else Triplet.zero()

        controller = datapath_controller(
            latency_cycles=max(schedule.latency, 1),
            operator_count=max(operator_count, 1),
            register_words=reg_words,
            mux_count=muxes,
            value_width=width,
            params=params.pla,
        )
        if params.scan_design:
            from repro.bad.controller import pla_estimate

            extra_terms = max(
                1,
                int(controller.product_terms * params.scan_term_fraction),
            )
            controller = pla_estimate(
                controller.inputs,
                controller.outputs + 1,  # scan-enable line
                controller.product_terms + extra_terms,
                params.pla,
            )

        active_ml = (
            functional.ml
            + registers.ml
            + multiplexers.ml
            + controller.area_mil2.ml
        )
        cell_count = (
            max(operator_count, 1)
            + reg_words
            + ceil_div(muxes, max(width, 1))
            + 1  # the controller
        )
        wiring = wiring_estimate(active_ml, cell_count, params.wiring)

        overhead = (
            self.library.register.delay_ns
            + (self.library.mux.delay_ns if muxes else 0.0)
            + wiring.delay_ns
            + controller.delay_ns
        )
        if params.scan_design:
            overhead += params.scan_delay_ns

        profile = memory_access_profile(sub, sub.operations)
        bandwidth = (
            profile.bandwidth_bits(self.memories) if profile.blocks else {}
        )

        unit_area_by_class: Dict[str, float] = {}
        busy_by_class: Dict[str, int] = {}
        for an_op_id, cls in op_class.items():
            cycles = schedule.duration[an_op_id]
            busy_by_class[cls] = busy_by_class.get(cls, 0) + cycles
            if cls.startswith("mem:") or cls in unit_area_by_class:
                continue
            component = module_set.component(OpType(cls))
            unit_area_by_class[cls] = component.area_for_width(width)
        power = power_estimate(
            functional_area_by_class=unit_area_by_class,
            busy_cycles_by_class=busy_by_class,
            ii_dp=ii_dp,
            dp_cycle_ns=self.clocks.dp_cycle_ns,
            register_bits=reg_bits,
            mux_count=muxes,
            controller_terms=controller.product_terms,
            active_area_mil2=active_ml,
            params=params.power,
        )

        return DesignPrediction(
            partition=name,
            module_set=module_set,
            timing=self.style.timing,
            pipelined=pipelined,
            operators=dict(effective),
            ii_dp=ii_dp,
            latency_dp=max(schedule.latency, 1),
            ii_main=self.clocks.dp_cycles_to_main(ii_dp),
            latency_main=self.clocks.dp_cycles_to_main(
                max(schedule.latency, 1)
            ),
            register_bits=reg_bits,
            register_words=reg_words,
            mux_count=muxes,
            area=AreaBreakdown(
                functional_units=functional,
                registers=registers,
                multiplexers=multiplexers,
                controller=controller.area_mil2,
                wiring=wiring.area_mil2,
            ),
            controller=controller,
            clock_overhead_ns=overhead,
            memory_bandwidth_bits=bandwidth,
            input_bits=sum(v.width for v in sub.primary_inputs()),
            output_bits=sum(v.width for v in sub.primary_outputs()),
            power_mw=power.total_mw,
        )

    @staticmethod
    def _dominant_width(sub: DataFlowGraph) -> int:
        widths = [v.width for v in sub.values.values()]
        return max(widths) if widths else 1

    @staticmethod
    def _dedup_key(prediction: DesignPrediction) -> Tuple:
        return (
            prediction.module_set.label,
            tuple(sorted(prediction.operators.items())),
            prediction.ii_main,
            prediction.latency_main,
            prediction.pipelined,
        )
