"""In-process job queue for long-running searches.

Design-space enumerations can dwarf the interactive feasibility checks
(the paper measured 61.4 s unpruned vs sub-second pruned, section 3.1),
so the serving layer runs them on a worker pool off the request thread:
``POST .../enumerate`` submits a job and returns immediately; the client
polls ``GET /jobs/{id}``.

Jobs move ``queued -> running -> done | failed | cancelled``.  Timeouts
and cancellation are *cooperative*: the job function receives a
``should_stop()`` callable wired into the search heuristics' cancellation
hooks (see :meth:`repro.core.chop.ChopSession.check`), which starts
returning ``True`` once the job is cancelled or its wall-clock budget is
spent.  A queued job that is cancelled never starts.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro.errors import SearchCancelled

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
CANCELLED = "cancelled"


@dataclass
class Job:
    """One unit of background work and its lifecycle record."""

    id: str
    kind: str
    state: str = QUEUED
    submitted_at: float = field(default_factory=time.time)
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    timeout_s: Optional[float] = None
    result: Any = None
    error: Optional[str] = None
    cancel_event: threading.Event = field(default_factory=threading.Event)
    progress: Optional[Dict[str, int]] = None
    #: Trace id of the tracer following this job (traced jobs only).
    trace_id: Optional[str] = None
    #: Observability artifacts captured by the job function — finished
    #: span records under ``"trace"``, the explain document under
    #: ``"explain"``.  Written once, after the run; served by
    #: ``GET /jobs/{id}/trace`` and ``GET /jobs/{id}/explain``.
    artifacts: Dict[str, Any] = field(default_factory=dict)
    _deadline: Optional[float] = None

    def should_stop(self) -> bool:
        """The cooperative hook handed to the job function."""
        if self.cancel_event.is_set():
            return True
        return self._deadline is not None and time.monotonic() > self._deadline

    def report_progress(self, done: int, total: int) -> None:
        """Per-shard progress hook handed to engine-backed searches.

        Replaces the whole dict in one assignment so concurrent
        ``to_dict`` readers always see a consistent pair.
        """
        self.progress = {"shards_done": done, "shards_total": total}

    def to_dict(self) -> Dict[str, Any]:
        """The ``GET /jobs/{id}`` payload."""
        doc: Dict[str, Any] = {
            "job_id": self.id,
            "kind": self.kind,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "timeout_s": self.timeout_s,
        }
        if self.progress is not None:
            doc["progress"] = self.progress
        if self.trace_id is not None:
            doc["trace_id"] = self.trace_id
        if self.state == DONE:
            doc["result"] = self.result
        if self.error is not None:
            doc["error"] = self.error
        return doc


class JobQueue:
    """A bounded worker pool with per-job timeout and cancellation."""

    def __init__(
        self,
        workers: int = 2,
        default_timeout_s: Optional[float] = 300.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.workers = workers
        self.default_timeout_s = default_timeout_s
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="chop-job"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, Job] = {}
        self._counter = 0

    # ------------------------------------------------------------------
    # submission and execution
    # ------------------------------------------------------------------
    def submit(
        self,
        fn: Callable[..., Any],
        kind: str = "job",
        timeout_s: Optional[float] = None,
        pass_job: bool = False,
    ) -> Job:
        """Queue ``fn(should_stop)``; returns the job record immediately.

        ``timeout_s=None`` uses the queue default; pass ``0`` (or any
        non-positive value) for no timeout.  With ``pass_job`` the
        function receives the whole :class:`Job` instead of just the
        ``should_stop`` hook — engine-backed searches use this to wire
        :meth:`Job.report_progress` into per-shard callbacks.
        """
        if timeout_s is None:
            timeout_s = self.default_timeout_s
        if timeout_s is not None and timeout_s <= 0:
            timeout_s = None
        with self._lock:
            self._counter += 1
            job = Job(
                id=f"job-{self._counter}", kind=kind, timeout_s=timeout_s
            )
            self._jobs[job.id] = job
        self._executor.submit(self._run, job, fn, pass_job)
        return job

    def _run(
        self, job: Job, fn: Callable[..., Any], pass_job: bool = False
    ) -> None:
        with self._lock:
            if job.cancel_event.is_set():
                job.state = CANCELLED
                job.finished_at = time.time()
                job.error = "cancelled before start"
                return
            job.state = RUNNING
            job.started_at = time.time()
            if job.timeout_s is not None:
                job._deadline = time.monotonic() + job.timeout_s
        try:
            result = fn(job) if pass_job else fn(job.should_stop)
        except SearchCancelled as exc:
            with self._lock:
                job.finished_at = time.time()
                if job.cancel_event.is_set():
                    job.state = CANCELLED
                    job.error = f"cancelled: {exc}"
                elif job.timeout_s is not None:
                    job.state = FAILED
                    job.error = (
                        f"timed out after {job.timeout_s:g} s: {exc}"
                    )
                else:
                    job.state = FAILED
                    job.error = f"SearchCancelled: {exc}"
            return
        except Exception as exc:  # noqa: BLE001 — job boundary
            with self._lock:
                job.state = FAILED
                job.finished_at = time.time()
                job.error = f"{type(exc).__name__}: {exc}"
            return
        with self._lock:
            job.state = DONE
            job.finished_at = time.time()
            job.result = result

    # ------------------------------------------------------------------
    # lifecycle queries
    # ------------------------------------------------------------------
    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def cancel(self, job_id: str) -> Optional[Job]:
        """Request cancellation; running jobs stop at the next hook poll."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            job.cancel_event.set()
            return job

    def depth(self) -> Dict[str, int]:
        """Queue-depth gauges for ``/metrics``."""
        with self._lock:
            states = [job.state for job in self._jobs.values()]
        return {
            "queued": states.count(QUEUED),
            "running": states.count(RUNNING),
            "total": len(states),
        }

    def wait(self, job_id: str, timeout: float = 30.0) -> Job:
        """Block until a job reaches a terminal state (test helper)."""
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            job = self.get(job_id)
            if job is not None and job.state in (DONE, FAILED, CANCELLED):
                return job
            time.sleep(0.01)
        raise TimeoutError(f"job {job_id} did not finish in {timeout} s")

    def shutdown(self) -> None:
        """Cancel everything and release the worker threads."""
        with self._lock:
            jobs = list(self._jobs.values())
        for job in jobs:
            job.cancel_event.set()
        self._executor.shutdown(wait=False, cancel_futures=True)
