"""FM-style refinement of a chain partitioning during uncoarsening.

Classic Fiduccia–Mattheyses adapted to the chain invariant of
:mod:`repro.auto.initial`: instead of arbitrary part moves, a cluster in
part ``i`` may only move to an *adjacent* part, and only when the move
keeps every edge pointing forward:

* ``i -> i+1`` is legal iff the cluster has no successor in part ``i``
  (all its predecessors are already at ``<= i``);
* ``i -> i-1`` is legal iff it has no predecessor in part ``i``.

Legal moves therefore preserve the invariant move-by-move, which keeps
the projected :class:`repro.core.partitioning.Partitioning` acyclic at
every step — refinement can never wander into territory CHOP rejects
structurally.

Gains are cut-bit deltas bucketed in a max-indexed gain table (the FM
bucket structure, here a dict keyed by gain since bit-width gains are
sparse).  Each pass tentatively moves every movable cluster once,
highest gain first under a balance bound, then commits the best prefix —
negative-gain excursions included, which is what lets FM climb out of
the local minima a greedy hill-climber stalls in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.auto.coarsen import ClusterGraph
from repro.auto.initial import part_weights


@dataclass
class RefineStats:
    """Counters for one :func:`fm_refine` call (reported in traces)."""

    passes: int = 0
    moves_tried: int = 0
    moves_committed: int = 0
    cut_before: int = 0
    cut_after: int = 0


def _move_gain(
    cg: ClusterGraph, part_of: Dict[int, int], cluster: int, target: int
) -> int:
    """Cut-bit reduction of moving ``cluster`` to ``target``."""
    here = part_of[cluster]
    gain = 0
    for neighbour_map in (cg.succ.get(cluster, {}), cg.pred.get(cluster, {})):
        for other, weight in neighbour_map.items():
            other_part = part_of[other]
            if other_part == here:
                gain -= weight  # becomes cut
            elif other_part == target:
                gain += weight  # no longer cut
    return gain


def _legal_targets(
    cg: ClusterGraph, part_of: Dict[int, int], cluster: int, parts: int
) -> List[int]:
    """Adjacent parts ``cluster`` may move to without breaking the chain."""
    here = part_of[cluster]
    targets: List[int] = []
    if here + 1 < parts and all(
        part_of[s] != here for s in cg.succ.get(cluster, {})
    ):
        targets.append(here + 1)
    if here - 1 >= 0 and all(
        part_of[p] != here for p in cg.pred.get(cluster, {})
    ):
        targets.append(here - 1)
    return targets


def fm_refine(
    cg: ClusterGraph,
    part_of: Dict[int, int],
    parts: int,
    balance_tolerance: float = 0.3,
    max_passes: int = 8,
    stats: Optional[RefineStats] = None,
) -> Dict[int, int]:
    """Refine ``part_of`` in place over ``cg``; returns it for chaining.

    ``balance_tolerance`` bounds every part at
    ``(1 + tolerance) * total / parts`` operations; moves that would
    overfill the target or empty the source are skipped.  Ends after
    ``max_passes`` or the first pass whose best prefix is empty.
    """
    if stats is None:
        stats = RefineStats()
    total = cg.total_weight()
    max_part = max(1.0, (1.0 + balance_tolerance) * total / parts)
    # Symmetric floor: no part may shrink below half its fair share —
    # without it FM happily drains a middle part to a handful of
    # operations whenever that trims the cut.
    min_part = max(1, total // (2 * parts))
    stats.cut_before = cg.cut_bits(part_of)

    for _pass in range(max_passes):
        stats.passes += 1
        weights = part_weights(cg, part_of, parts)
        locked: Set[int] = set()
        # Gain buckets: gain value -> clusters proposing a move at that
        # gain.  Rebuilt lazily; stale entries are re-validated on pop.
        buckets: Dict[int, List[Tuple[int, int]]] = {}

        def push(cluster: int) -> None:
            for target in _legal_targets(cg, part_of, cluster, parts):
                gain = _move_gain(cg, part_of, cluster, target)
                buckets.setdefault(gain, []).append((cluster, target))

        for cluster in cg.members:
            push(cluster)

        trail: List[Tuple[int, int, int, int]] = []  # cluster, from, to, gain
        running = 0
        best_running = 0
        best_len = 0
        while buckets:
            top = max(buckets)
            entries = buckets[top]
            # Deterministic pop: smallest (cluster, target) at top gain.
            entries.sort()
            cluster, target = entries.pop(0)
            if not entries:
                del buckets[top]
            if cluster in locked:
                continue
            here = part_of[cluster]
            # Re-validate the stale entry against current state.
            if target not in _legal_targets(cg, part_of, cluster, parts):
                continue
            if _move_gain(cg, part_of, cluster, target) != top:
                push(cluster)  # re-queue at its current gain
                continue
            if weights[target] + cg.weight(cluster) > max_part:
                continue
            if weights[here] - cg.weight(cluster) < min_part:
                continue
            stats.moves_tried += 1
            part_of[cluster] = target
            weights[here] -= cg.weight(cluster)
            weights[target] += cg.weight(cluster)
            locked.add(cluster)
            trail.append((cluster, here, target, top))
            running += top
            if running > best_running:
                best_running = running
                best_len = len(trail)
            # Neighbours' gains and legality changed: re-queue them.
            for neighbour_map in (
                cg.succ.get(cluster, {}),
                cg.pred.get(cluster, {}),
            ):
                for other in neighbour_map:
                    if other not in locked:
                        push(other)

        # Roll back past the best prefix.
        for cluster, here, _target, _gain in reversed(trail[best_len:]):
            part_of[cluster] = here
        stats.moves_committed += best_len
        if best_len == 0:
            break

    stats.cut_after = cg.cut_bits(part_of)
    return part_of


def project(
    part_of: Dict[int, int], projection: Dict[int, int]
) -> Dict[int, int]:
    """Lift a coarse-level assignment to the next finer level.

    ``projection`` maps finer cluster ids to coarse ids (as recorded by
    :class:`repro.auto.coarsen.CoarseLevel`); every finer cluster starts
    in its coarse parent's part.
    """
    return {fine: part_of[coarse] for fine, coarse in projection.items()}
