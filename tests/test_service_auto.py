"""The POST /projects/{id}/auto route: jobs, traces, gauges, errors."""

from __future__ import annotations

from tests.test_service_http import (  # noqa: F401  (fixtures)
    poll_job,
    project_doc,
    request,
    server,
)


class TestAutoRoute:
    def test_auto_job_round_trip(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        status, job = request(
            port, "POST", f"/projects/{pid}/auto",
            {"chips": 2, "replicate": True, "include_assignment": True},
        )
        assert status == 202
        assert job["kind"] == f"auto:{pid}"

        finished = poll_job(port, job["job_id"], timeout=120)
        assert finished["state"] == "done"
        result = finished["result"]
        assert result["chips"] == 2
        assert result["feasible"] is True
        assert sum(result["part_sizes"]) == result["operations"]
        assignment = result["assignment"]
        assert len(assignment) == result["operations"]
        assert set(assignment.values()) == {0, 1}

        # the span tree is served from the job trace artifact
        status, trace = request(
            port, "GET", f"/jobs/{job['job_id']}/trace"
        )
        assert status == 200
        names = {span["name"] for span in trace["spans"]}
        assert {
            "service.job", "auto.partition", "auto.coarsen",
            "auto.initial", "auto.refine", "auto.replicate",
            "auto.feasibility",
        } <= names

        # gauges moved under the "auto" block
        _, metrics = request(port, "GET", "/metrics")
        auto = metrics["auto"]
        assert auto["jobs"] == 1
        assert auto["feasible"] == 1
        assert auto["infeasible"] == 0

    def test_auto_rejects_bad_options(self, server, project_doc):
        service, port = server
        _, project = request(port, "POST", "/projects", project_doc)
        pid = project["project_id"]

        status, err = request(
            port, "POST", f"/projects/{pid}/auto", {"chips": 0}
        )
        assert status == 400
        assert "invalid auto option" in err["error"]

        status, err = request(
            port, "POST", f"/projects/{pid}/auto",
            {"heuristic": "mystery"},
        )
        assert status == 400
        assert "unknown heuristic" in err["error"]

        status, err = request(
            port, "POST", f"/projects/{pid}/auto",
            {"timeout_s": "soon"},
        )
        assert status == 400
        assert "timeout_s" in err["error"]

    def test_auto_unknown_project_404(self, server):
        service, port = server
        status, err = request(
            port, "POST", "/projects/nope/auto", {"chips": 2}
        )
        assert status == 404
