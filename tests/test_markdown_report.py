"""Tests for the markdown session report."""

from __future__ import annotations

import pytest

from repro.cli import main
from repro.core.feasibility import FeasibilityCriteria
from repro.experiments import experiment1_session
from repro.reporting.markdown import markdown_report


@pytest.fixture(scope="module")
def session_and_results():
    session = experiment1_session(2, 2)
    results = {
        "iterative": session.check("iterative"),
        "enumeration": session.check("enumeration"),
    }
    return session, results


class TestMarkdownReport:
    def test_sections_present(self, session_and_results):
        session, results = session_and_results
        text = markdown_report(session, results)
        for heading in (
            "# CHOP feasibility report",
            "## Inputs",
            "## Partitioning",
            "## Search outcomes",
            "## Recommended design",
            "## Chip occupancy",
        ):
            assert heading in text

    def test_both_heuristics_tabulated(self, session_and_results):
        session, results = session_and_results
        text = markdown_report(session, results)
        assert "| iterative |" in text
        assert "| enumeration |" in text

    def test_guidelines_embedded(self, session_and_results):
        session, results = session_and_results
        text = markdown_report(session, results)
        assert "module library of" in text
        assert "bits of registers" in text

    def test_infeasible_report(self):
        session = experiment1_session(2, 2)
        # A budget every partition passes alone (level-1 prune keeps
        # candidates) but the integrated system cannot meet.
        session.criteria = FeasibilityCriteria(
            performance_ns=30_000.0,
            delay_ns=30_000.0,
            system_power_mw=100.0,
        )
        results = {"iterative": session.check("iterative")}
        text = markdown_report(session, results)
        assert "No feasible implementation" in text
        assert "system power <= 100 mW" in text

    def test_custom_title(self, session_and_results):
        session, results = session_and_results
        text = markdown_report(session, results, title="My review")
        assert text.startswith("# My review")

    def test_cli_report_roundtrip(self, tmp_path, capsys):
        project = tmp_path / "p.json"
        assert main(["export-demo", str(project)]) == 0
        report = tmp_path / "report.md"
        assert main(["report", str(project), "-o", str(report)]) == 0
        text = report.read_text()
        assert "## Recommended design" in text
