"""Operator, register and multiplexer allocation estimates.

BAD "performs detailed predictions on register and multiplexer
allocation" and "considers serial-parallel tradeoffs" (section 2.4).

* :func:`allocation_candidates` spans the serial-parallel axis: unit
  vectors from fully serial (one unit per type) to fully parallel (one
  unit per operation).
* :func:`register_requirement` counts storage from value lifetimes over a
  schedule, with modulo-interval overlap for pipelined designs.
* :func:`mux_requirement` estimates 1-bit 2:1 multiplexer counts from the
  sharing implied by the operator allocation and register usage.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from repro.bad.scheduling import Schedule
from repro.dfg.graph import DataFlowGraph
from repro.dfg.ops import MEMORY_OP_TYPES
from repro.errors import PredictionError
from repro.units import ceil_div


def allocation_candidates(
    op_counts: Mapping[str, int],
    max_total_units: int = 64,
    busy_cycles: Mapping[str, int] | None = None,
) -> List[Dict[str, int]]:
    """Candidate unit vectors along the serial-parallel frontier.

    ``op_counts`` maps a resource class to the number of operations of
    that class; ``busy_cycles`` to the total unit-cycles that class must
    execute per iteration (defaults to the op count, i.e. one cycle per
    op).  For every achievable target latency ``S`` the performance-bound
    allocation is ``ceil(busy / S)`` units per class — the classic lower
    bound a force-directed scheduler converges to.  Sweeping ``S`` from
    the most parallel point to fully serial yields every distinct vector
    on the frontier, including skewed mixes (many multipliers, one adder)
    that a single common parallelism level would miss.
    """
    if not op_counts:
        return [{}]
    for cls, count in op_counts.items():
        if count <= 0:
            raise PredictionError(
                f"resource class {cls!r} has non-positive count {count}"
            )
    busy: Dict[str, int] = {}
    for cls, count in op_counts.items():
        cycles = count if busy_cycles is None else busy_cycles.get(cls, count)
        if cycles < count:
            raise PredictionError(
                f"resource class {cls!r}: busy cycles {cycles} below the "
                f"operation count {count}"
            )
        busy[cls] = cycles
    # S below this leaves some class above its op count (more units than
    # operations buys nothing); S above the serial bound changes nothing.
    s_min = max(1, max(ceil_div(b, op_counts[cls]) for cls, b in busy.items()))
    s_max = max(busy.values())
    seen: set = set()
    candidates: List[Dict[str, int]] = []

    def consider(vector: Dict[str, int]) -> None:
        if sum(vector.values()) > max_total_units:
            return
        key = tuple(sorted(vector.items()))
        if key not in seen:
            seen.add(key)
            candidates.append(vector)

    for target in range(s_min, s_max + 1):
        consider(
            {
                cls: min(op_counts[cls], max(1, ceil_div(b, target)))
                for cls, b in busy.items()
            }
        )
    # Also the count-balanced family (every class scaled by one common
    # parallelism level): it reaches points the performance bound skips
    # when classes have very different per-op cycle counts.
    largest = max(op_counts.values())
    for level in range(1, largest + 1):
        consider(
            {
                cls: min(count, max(1, ceil_div(count * level, largest)))
                for cls, count in op_counts.items()
            }
        )
    if not candidates:
        # Even fully serial exceeds the cap; return the serial vector so
        # the caller can reject it on area instead of silently exploring
        # nothing.
        candidates.append({cls: 1 for cls in op_counts})
    return candidates


def value_lifetimes(
    graph: DataFlowGraph, schedule: Schedule
) -> Dict[str, Tuple[int, int]]:
    """Half-open [birth, death) lifetime of every value, in dp cycles.

    Partition inputs are excluded: they are "simultaneously available
    before the execution starts" (section 2.3) *from the input-side
    data-transfer module's buffer*, which CHOP sizes separately — charging
    the PU registers for them as well would double-count the storage.
    Values feeding the outside world stay live until the end of the
    schedule, where the output-side transfer module takes over.
    """
    lifetimes: Dict[str, Tuple[int, int]] = {}
    for value in graph.values.values():
        if value.producer is None:
            continue  # held in the input DTM buffer, not PU registers
        birth = schedule.finish(value.producer)
        consumers = graph.consumers(value.id)
        if consumers:
            death = max(schedule.start[c] + 1 for c in consumers)
        else:
            death = birth
        if value.is_output:
            # Outputs stay live *through* the last cycle: the transfer
            # module reads them after the schedule completes.
            death = max(death, schedule.latency + 1)
        if death <= birth:
            if (
                consumers
                and not value.is_output
                and value.producer is not None
                and all(
                    schedule.chained(value.producer, c) for c in consumers
                )
            ):
                # Every consumer reads the value combinationally within
                # the producing cycle; no register is ever written.
                continue
            # A value born in the last cycle (or consumed in its birth
            # cycle) still needs a slot for one cycle.
            death = birth + 1
        lifetimes[value.id] = (birth, death)
    return lifetimes


def register_requirement(
    graph: DataFlowGraph,
    schedule: Schedule,
    initiation_interval: int,
) -> int:
    """Register **words** needed, by modulo-interval lifetime overlap.

    For a nonpipelined design pass the schedule latency as the interval;
    the computation then reduces to the classic max-live count (left-edge
    bound).  For a pipelined design with interval ``l``, iterations
    overlap and a value alive ``s`` cycles occupies ``ceil(s/l)`` slots in
    steady state; the per-slot accumulation below captures exactly that.
    """
    if initiation_interval <= 0:
        raise PredictionError(
            f"initiation interval must be positive, got {initiation_interval}"
        )
    slots = [0] * initiation_interval
    for birth, death in value_lifetimes(graph, schedule).values():
        for cycle in range(birth, death):
            slots[cycle % initiation_interval] += 1
    return max(slots, default=0)


def register_bits(
    graph: DataFlowGraph,
    schedule: Schedule,
    initiation_interval: int,
) -> int:
    """Register bits: the word requirement weighted by value widths.

    Uses the width-weighted analogue of :func:`register_requirement` so
    mixed-width graphs are charged correctly.
    """
    if initiation_interval <= 0:
        raise PredictionError(
            f"initiation interval must be positive, got {initiation_interval}"
        )
    slots = [0] * initiation_interval
    lifetimes = value_lifetimes(graph, schedule)
    for value_id, (birth, death) in lifetimes.items():
        width = graph.value(value_id).width
        for cycle in range(birth, death):
            slots[cycle % initiation_interval] += width
    return max(slots, default=0)


def mux_requirement(
    graph: DataFlowGraph,
    allocation: Mapping[str, int],
    op_class: Mapping[str, str],
    register_words: int,
    value_width: int,
    sharing_factor: float = 0.55,
) -> int:
    """Estimate of 1-bit 2:1 multiplexers implied by resource sharing.

    Each functional unit serving ``m`` operations needs an ``m``-way
    selector — ``m - 1`` two-to-one muxes — per bit on each of its data
    inputs.  Shared registers likewise need write-port selection: with
    ``w`` writers funnelled into ``r`` registers, ``w - r`` muxes per bit
    (zero when nothing is shared).

    ``sharing_factor`` discounts the naive tree count for the wire
    sharing a binder exploits (values feeding several shared units reuse
    the same selected bus): register-transfer binders of the ADAM family
    report roughly half the naive steering, which the default reflects.
    """
    # Operations per resource class, and input port counts.
    ops_per_class: Dict[str, int] = {}
    input_ports: Dict[str, int] = {}
    for op_id, cls in op_class.items():
        op = graph.operation(op_id)
        ops_per_class[cls] = ops_per_class.get(cls, 0) + 1
        ports = max(1, len(op.inputs))
        input_ports[cls] = max(input_ports.get(cls, 0), ports)

    # A port's selector cannot be wider than the number of distinct
    # physical sources it can see: registers, the share of primary-input
    # buses falling on that port, and unit outputs.  Deeply serial
    # designs route many operations through few sources, so the naive
    # ops-per-unit fan-in over-counts badly without this cap.
    total_units = sum(max(0, u) for u in allocation.values())
    input_count = len(graph.primary_inputs())

    muxes = 0
    for cls, op_count in ops_per_class.items():
        units = allocation.get(cls, 0)
        if units <= 0:
            raise PredictionError(
                f"resource class {cls!r} missing from allocation"
            )
        if op_count <= units:
            continue  # no sharing, no steering
        ports = input_ports[cls]
        source_cap = max(
            2,
            register_words
            + ceil_div(input_count, max(1, ports))
            + total_units,
        )
        fan_in = min(ceil_div(op_count, units), source_cap)
        muxes += units * ports * (fan_in - 1) * value_width

    # Register write-port steering.  Primary inputs are served from the
    # transfer-module buffers (see value_lifetimes), so only internally
    # produced values write the PU registers — and a register cannot see
    # more distinct writers than there are unit outputs, which caps the
    # steering in deeply serial designs.
    writers = sum(
        1 for v in graph.values.values() if v.producer is not None
    )
    if register_words > 0 and writers > register_words:
        sharing = min(
            writers - register_words,
            register_words * max(1, total_units - 1),
        )
        muxes += sharing * value_width
    if not (0.0 < sharing_factor <= 1.0):
        raise PredictionError(
            f"sharing factor must be in (0, 1], got {sharing_factor}"
        )
    return int(round(muxes * sharing_factor))


def partition_resource_model(
    graph: DataFlowGraph,
) -> Tuple[Dict[str, str], Dict[str, int]]:
    """Resource class of each operation and op counts per class.

    Compute operations share units per :class:`~repro.dfg.ops.OpType`;
    memory operations contend for their block's ports, so each block forms
    its own class (``mem:<block>``).
    """
    op_class: Dict[str, str] = {}
    counts: Dict[str, int] = {}
    for op in graph:
        if op.op_type in MEMORY_OP_TYPES:
            cls = f"mem:{op.memory_block}"
        else:
            cls = op.op_type.value
        op_class[op.id] = cls
        counts[cls] = counts.get(cls, 0) + 1
    return op_class, counts
