"""The manufacturing-cost model: yield, die cost, partition pricing."""

from __future__ import annotations

import math
from types import SimpleNamespace

import pytest

from repro.chips.cost import (
    MIL2_TO_CM2,
    CostParameters,
    die_cost,
    die_yield,
    gross_dies_per_wafer,
    partition_cost,
)
from repro.errors import ChipError
from repro.experiments import experiment1_session

#: The paper's MOSIS package-2 die (335 x 335 mil).
MOSIS_DIE_MIL2 = 335.0 * 335.0


class TestDieYield:
    def test_zero_area_yields_everything(self):
        assert die_yield(0.0, CostParameters()) == 1.0

    def test_negative_area_rejected(self):
        with pytest.raises(ChipError):
            die_yield(-1.0, CostParameters())

    def test_monotone_non_increasing_in_area(self):
        params = CostParameters()
        areas = [0.0, 1e3, 1e4, 1e5, 5e5, 1e6]
        yields = [die_yield(a, params) for a in areas]
        assert yields == sorted(yields, reverse=True)
        assert all(0.0 < y <= 1.0 for y in yields)

    def test_poisson_limit(self):
        """``alpha = inf`` is the Poisson model ``exp(-A * D0)``."""
        params = CostParameters(clustering_alpha=math.inf)
        area = 2e5
        defects = area * MIL2_TO_CM2 * params.defect_density_per_cm2
        assert die_yield(area, params) == pytest.approx(
            math.exp(-defects)
        )

    def test_clustering_never_hurts(self):
        """Finite alpha (clustered defects) yields >= Poisson."""
        area = 3e5
        poisson = die_yield(
            area, CostParameters(clustering_alpha=math.inf)
        )
        for alpha in (0.5, 1.0, 3.0, 10.0):
            clustered = die_yield(
                area, CostParameters(clustering_alpha=alpha)
            )
            assert clustered >= poisson

    def test_large_alpha_approaches_poisson(self):
        area = 2e5
        poisson = die_yield(
            area, CostParameters(clustering_alpha=math.inf)
        )
        near = die_yield(area, CostParameters(clustering_alpha=1e6))
        assert near == pytest.approx(poisson, rel=1e-4)


class TestGrossDies:
    def test_zero_area_is_infinite(self):
        assert gross_dies_per_wafer(0.0, CostParameters()) == math.inf

    def test_wafer_sized_die_fits_nothing(self):
        params = CostParameters()
        radius_cm = params.wafer_diameter_mm / 20.0
        wafer_mil2 = math.pi * radius_cm**2 / MIL2_TO_CM2
        assert gross_dies_per_wafer(wafer_mil2, params) == 0.0

    def test_monotone_decreasing(self):
        params = CostParameters()
        areas = [1e4, 1e5, 1e6, 1e7]
        dies = [gross_dies_per_wafer(a, params) for a in areas]
        assert dies == sorted(dies, reverse=True)


class TestDieCost:
    def test_zero_area_is_free(self):
        assert die_cost(0.0, CostParameters()) == 0.0

    def test_mosis_die_costs_tens_of_dollars(self):
        cost = die_cost(MOSIS_DIE_MIL2, CostParameters())
        assert 1.0 < cost < 100.0

    def test_increasing_in_area(self):
        params = CostParameters()
        costs = [die_cost(a, params) for a in (1e4, 1e5, 3e5, 6e5)]
        assert costs == sorted(costs)

    def test_superlinear_in_area(self):
        """Splitting a die in half more than halves the silicon bill.

        This is the yield effect the whole explorer trades on: two
        half-area dies cost less than one full die.
        """
        params = CostParameters()
        area = 4e5
        assert 2 * die_cost(area / 2, params) < die_cost(area, params)

    def test_unmanufacturable_die_raises(self):
        params = CostParameters()
        radius_cm = params.wafer_diameter_mm / 20.0
        wafer_mil2 = math.pi * radius_cm**2 / MIL2_TO_CM2
        with pytest.raises(ChipError):
            die_cost(wafer_mil2 * 2, params)


class TestParameters:
    def test_defaults_validate(self):
        CostParameters().validate()

    @pytest.mark.parametrize(
        "overrides",
        [
            {"wafer_cost": 0.0},
            {"wafer_diameter_mm": -1.0},
            {"defect_density_per_cm2": -0.1},
            {"clustering_alpha": 0.0},
            {"package_per_pin": -1.0},
            {"assembly_yield": 0.0},
            {"assembly_yield": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, overrides):
        with pytest.raises(ChipError):
            CostParameters(**overrides).validate()


def _fake_selection(session, area_mil2):
    """A selection pricing every partition at ``area_mil2``.

    ``partition_cost`` only reads ``prediction.area_total.ml`` from the
    selection values, so a namespace stands in for a DesignPrediction.
    """
    prediction = SimpleNamespace(
        area_total=SimpleNamespace(ml=area_mil2)
    )
    return {
        name: prediction
        for name in session.partitioning().partitions
    }


class TestPartitionCost:
    def test_single_chip_design(self):
        session = experiment1_session(
            package_number=2, partition_count=1
        )
        report = partition_cost(session)
        assert len(report.chips) == 1
        assert report.cut_bits == 0
        assert report.substrate == 0.0
        assert report.assembly_yield == pytest.approx(0.99)
        assert report.total == pytest.approx(
            report.pre_assembly / 0.99
        )

    def test_two_chips_pay_substrate_and_cut(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        report = partition_cost(session)
        assert len(report.chips) == 2
        assert report.cut_bits > 0
        params = report.parameters
        assert report.substrate == pytest.approx(
            params.substrate_per_chip
            + params.substrate_per_cut_bit * report.cut_bits
        )
        assert report.assembly_yield == pytest.approx(0.99**2)

    def test_zero_area_partitions_cost_no_silicon(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        report = partition_cost(
            session, selection=_fake_selection(session, 0.0)
        )
        assert report.die_total == 0.0
        assert all(chip.yield_fraction == 1.0 for chip in report.chips)
        # Packages and the substrate are still real parts.
        assert report.package_total > 0.0
        assert report.substrate > 0.0

    def test_selection_beats_whole_package_pricing(self):
        """Pricing the predicted area undercuts the full-die fallback."""
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        session.check()
        best = session.check().best()
        priced = partition_cost(session, selection=best.selection)
        pessimistic = partition_cost(session)
        assert priced.die_total < pessimistic.die_total

    def test_cost_monotone_in_chip_count_fixed_total_area(self):
        """More chips = more packaging, under a fixed silicon budget.

        With total predicted area held constant, the die bill *falls*
        with k (yield is superlinear in die area) but packages,
        substrate and assembly risk grow linearly — so the non-die
        share of the report must rise monotonically with k.
        """
        total_area = 2e5
        die_totals, overheads = [], []
        for k in (1, 2, 4):
            session = experiment1_session(
                package_number=2, partition_count=k
            )
            report = partition_cost(
                session,
                selection=_fake_selection(session, total_area / k),
            )
            die_totals.append(report.die_total)
            overheads.append(report.total - report.die_total)
        assert die_totals == sorted(die_totals, reverse=True)
        assert overheads == sorted(overheads)

    def test_unused_chips_are_not_priced(self):
        session = experiment1_session(
            package_number=2, partition_count=2
        )
        from repro.chips.presets import mosis_package

        session.add_chip("spare", mosis_package(1))
        report = partition_cost(session)
        assert sorted(c.chip for c in report.chips) == [
            "chip1", "chip2",
        ]
