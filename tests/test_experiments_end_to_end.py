"""End-to-end reproduction checks: the paper's qualitative results.

These tests assert the *shape* of the paper's evaluation (who wins, by
roughly what factor, where the crossovers fall) — not the absolute
numbers, which depended on the authors' predictor calibration.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENT1_CRITERIA,
    EXPERIMENT2_CRITERIA,
    experiment1_session,
    experiment2_session,
)


@pytest.fixture(scope="module")
def exp1_results():
    results = {}
    for n in (1, 2, 3):
        session = experiment1_session(package_number=2, partition_count=n)
        results[n] = session.check("enumeration")
    return results


@pytest.fixture(scope="module")
def exp2_results():
    results = {}
    for n in (1, 2, 3):
        session = experiment2_session(partition_count=n)
        results[n] = session.check("enumeration")
    return results


class TestExperiment1Shape:
    def test_every_cell_feasible(self, exp1_results):
        for n, result in exp1_results.items():
            assert result.feasible_trials > 0, f"{n} partitions infeasible"

    def test_more_chips_higher_performance(self, exp1_results):
        best = {n: r.best().ii_main for n, r in exp1_results.items()}
        # Paper: 2x speedup from 1->2 chips, up to 3x overall.
        assert best[2] < best[1]
        assert best[3] <= best[2]
        assert best[1] / best[2] >= 1.5
        assert best[1] / best[3] >= 2.0

    def test_feasible_designs_meet_constraints(self, exp1_results):
        for result in exp1_results.values():
            for design in result.feasible:
                perf = design.system.performance_ns
                assert perf.ub <= EXPERIMENT1_CRITERIA.performance_ns

    def test_clock_near_main_clock(self, exp1_results):
        # Paper reports 308-312 ns adjusted clocks (300 ns main).
        for result in exp1_results.values():
            clock = result.best().clock_cycle_ns
            assert 300.0 < clock < 330.0

    def test_fewer_pins_same_ii_worse_delay(self):
        wide = experiment1_session(2, 3).check("enumeration").best()
        narrow = experiment1_session(1, 3).check("enumeration").best()
        assert narrow.ii_main == wide.ii_main
        assert narrow.delay_main >= wide.delay_main


class TestExperiment2Shape:
    def test_every_cell_feasible(self, exp2_results):
        for n, result in exp2_results.items():
            assert result.feasible_trials > 0

    def test_multi_cycle_beats_single_cycle(self, exp1_results,
                                            exp2_results):
        """Paper section 3.2: the multi-cycle style's faster clock gives
        higher-performance designs."""
        best1 = exp1_results[3].best()
        best2 = exp2_results[3].best()
        perf1 = best1.ii_main * best1.clock_cycle_ns
        perf2 = best2.ii_main * best2.clock_cycle_ns
        assert perf2 < perf1

    def test_higher_clock_overhead_than_exp1(self, exp1_results,
                                             exp2_results):
        # Paper: exp2 clocks 374-400 ns vs exp1's 308-312 ns.
        clock1 = exp1_results[2].best().clock_cycle_ns
        clock2 = exp2_results[2].best().clock_cycle_ns
        assert clock2 > clock1 + 30

    def test_design_space_larger_than_exp1(self):
        s1 = experiment1_session(2, 1)
        s2 = experiment2_session(1)
        raw1 = sum(len(v) for v in s1.predict_all().values())
        raw2 = sum(len(v) for v in s2.predict_all().values())
        assert raw2 > raw1  # paper: 656 vs 111 predictions

    def test_enumeration_beats_iterative_at_three_partitions(self):
        """Table 6's signature: E finds II 16 where I stops at II 20."""
        session = experiment2_session(partition_count=3)
        enum_best = session.check("enumeration").best()
        iter_best = session.check("iterative").best()
        assert enum_best.ii_main < iter_best.ii_main


class TestPruningEffect:
    def test_pruning_orders_of_magnitude(self):
        """Paper section 3.1: pruning keeps runs sub-second where the
        keep-all run took 61.4 s; the retained-design ratio shows the
        same orders-of-magnitude contrast."""
        session = experiment1_session(2, 2)
        raw = sum(len(v) for v in session.predict_all().values())
        pruned = sum(
            len(v) for v in session.pruned_predictions().values()
        )
        assert pruned * 5 <= raw

    def test_keep_all_design_space_has_duplicates(self):
        session = experiment1_session(2, 2)
        result = session.check(
            "enumeration", prune=False, keep_all=True
        )
        assert result.space is not None
        assert result.space.total > result.space.unique


class TestGuidelineReproduction:
    def test_section31_style_output(self):
        """The 2-partition feasible design reports the same kinds of
        decisions the paper's section 3.1 lists."""
        session = experiment1_session(2, 2)
        best = session.check("iterative").best()
        from repro.reporting import design_guidelines

        text = design_guidelines(best)
        for fragment in (
            "design style", "stages", "module library",
            "bits of registers", "2-to-1 multiplexers",
        ):
            assert fragment in text
