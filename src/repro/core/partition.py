"""Partitions of the behavioral specification."""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, FrozenSet, Iterable

from repro.errors import PartitioningError


@dataclass(frozen=True, slots=True)
class Partition:
    """A named, non-empty set of operation ids.

    Partitions are the unit of prediction: BAD predicts implementations
    per partition, and one processing unit (PU) implements each partition
    in the final design (Figure 4 of the paper).
    """

    name: str
    op_ids: FrozenSet[str]

    @staticmethod
    def of(name: str, op_ids: Iterable[str]) -> "Partition":
        ops = frozenset(op_ids)
        if not ops:
            raise PartitioningError(f"partition {name!r} must not be empty")
        return Partition(name=name, op_ids=ops)

    def __post_init__(self) -> None:
        if not self.op_ids:
            raise PartitioningError(f"partition {self.name!r} must not be empty")
        if not self.name:
            raise PartitioningError("partition name must not be empty")

    def __len__(self) -> int:
        return len(self.op_ids)

    def __contains__(self, op_id: str) -> bool:
        return op_id in self.op_ids

    def overlaps(self, other: "Partition") -> bool:
        return bool(self.op_ids & other.op_ids)

    def migrate(
        self, to_other: "Partition", op_ids: AbstractSet[str]
    ) -> tuple["Partition", "Partition"]:
        """Move operations to another partition (a designer modification).

        Returns the updated ``(self, other)`` pair.  Raises when the
        migration would empty this partition or names operations this
        partition does not own.
        """
        moved = frozenset(op_ids)
        if not moved <= self.op_ids:
            missing = sorted(moved - self.op_ids)
            raise PartitioningError(
                f"partition {self.name!r} does not contain {missing}"
            )
        remaining = self.op_ids - moved
        if not remaining:
            raise PartitioningError(
                f"migration would leave partition {self.name!r} empty; "
                "delete the partition instead"
            )
        return (
            Partition(self.name, remaining),
            Partition(to_other.name, to_other.op_ids | moved),
        )
