"""Rendering of paper-style tables, guidelines and figure series."""

from repro.reporting.tables import (
    format_table,
    library_table,
    package_table,
    prediction_stats_table,
    results_table,
)
from repro.reporting.guidelines import design_guidelines
from repro.reporting.markdown import markdown_report
from repro.reporting.figures import ascii_scatter, scatter_csv

__all__ = [
    "format_table",
    "library_table",
    "package_table",
    "prediction_stats_table",
    "results_table",
    "design_guidelines",
    "markdown_report",
    "ascii_scatter",
    "scatter_csv",
]
