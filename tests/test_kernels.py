"""Unit tests for the vectorized batch-evaluation kernels.

The load-bearing property is *bitwise agreement*: every comparison the
kernels make must reproduce the scalar reference arithmetic exactly, so
the screening masks are proofs, not approximations.  The end-to-end
byte-identity of whole search results lives in
``tests/test_kernels_identity.py``; here each kernel is pinned against
its scalar twin in isolation — the triangular CDF at every branch
breakpoint, the mixed-radix decode, the packed columns, the level-1
mask, the argmin, and the counter contract of the batch evaluator.
"""

from __future__ import annotations

import os
import struct

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.bad.prediction import DesignPrediction
from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.presets import mosis_package
from repro.core.chop import ChopSession
from repro.core.feasibility import (
    FeasibilityCriteria,
    prediction_possibly_feasible,
)
from repro.core.schemes import horizontal_cut
from repro.dfg.parser import parse_spec
from repro.engine import digit_weights
from repro.engine.sharding import decode_combination
from repro.engine.workers import (
    EvaluationProblem,
    chip_area_hopeless,
    evaluate_range,
    evaluate_range_kernel,
)
from repro.errors import PredictionError, SearchCancelled
from repro.kernels import (
    evaluate_range_batch,
    level1_keep_mask,
    lexicographic_argmin,
    pack_problem,
)
from repro.kernels.batch import screen_block
from repro.library.presets import extended_library
from repro.memory.module import MemoryModule
from repro.stats.batch import triangular_cdf_array
from repro.stats.distributions import triangular_cdf
from tests.strategies import triplet_parts

SPEC_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "examples", "specs",
)


def bits(value: float) -> bytes:
    return struct.pack("<d", value)


def session_for(
    partitions: int = 3,
    spec_name: str = "moving_average.chop",
    performance_ns: float = 60_000.0,
    delay_ns: float = 60_000.0,
) -> ChopSession:
    """A ready-to-check session built from an example .chop spec."""
    with open(os.path.join(SPEC_DIR, spec_name)) as handle:
        graph = parse_spec(handle.read())
    blocks = sorted(
        {
            op.memory_block
            for op in graph
            if getattr(op, "memory_block", None)
        }
    )
    session = ChopSession(
        graph=graph,
        library=extended_library(),
        clocks=ClockScheme(300.0),
        style=ArchitectureStyle(OperationTiming.MULTI_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=performance_ns, delay_ns=delay_ns
        ),
        memories=[
            MemoryModule(name, 256, 16, off_the_shelf=True)
            for name in blocks
        ],
    )
    parts = horizontal_cut(graph, partitions)
    assignment = {}
    for index, part in enumerate(parts):
        chip = f"chip{index + 1}"
        session.add_chip(chip, mosis_package(2))
        assignment[part.name] = chip
    session.set_partitions(parts, assignment)
    return session


def problem_for(
    session: ChopSession, prune: bool = True, raw: bool = False
) -> EvaluationProblem:
    predictions = (
        session.predict_all() if raw else session.pruned_predictions()
    )
    return EvaluationProblem.build(
        session.partitioning(), predictions, session.clocks,
        session.library, session.criteria, prune=prune,
    )


# ----------------------------------------------------------------------
# triangular CDF: bitwise equality with the scalar closed form
# ----------------------------------------------------------------------
class TestTriangularCdfArray:
    #: Supports covering every branch: degenerate point, mode at either
    #: edge, interior mode.
    SUPPORTS = [
        (0.0, 0.0, 0.0),
        (2.0, 2.0, 2.0),
        (0.0, 0.0, 2.0),   # mode at the lower edge (left == 0)
        (0.0, 2.0, 2.0),   # mode at the upper edge (right == 0)
        (0.0, 1.0, 2.0),
        (-3.0, -1.0, 4.0),
    ]
    #: Probe points at/inside/outside every breakpoint of the supports.
    PROBES = [-4.0, -3.0, -1.0, 0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 4.0, 5.0]

    def test_bitwise_equal_at_every_breakpoint(self):
        for lb, ml, ub in self.SUPPORTS:
            for x in self.PROBES:
                scalar = triangular_cdf(x, lb, ml, ub)
                vector = triangular_cdf_array(
                    x,
                    np.array([lb]), np.array([ml]), np.array([ub]),
                )
                assert bits(scalar) == bits(float(vector[0])), (
                    x, lb, ml, ub,
                )

    def test_whole_grid_in_one_call(self):
        lbs = np.array([s[0] for s in self.SUPPORTS])
        mls = np.array([s[1] for s in self.SUPPORTS])
        ubs = np.array([s[2] for s in self.SUPPORTS])
        for x in self.PROBES:
            out = triangular_cdf_array(x, lbs, mls, ubs)
            for i, (lb, ml, ub) in enumerate(self.SUPPORTS):
                assert bits(float(out[i])) == bits(
                    triangular_cdf(x, lb, ml, ub)
                )

    @given(triplet_parts(), st.floats(
        min_value=-2e6, max_value=2e6,
        allow_nan=False, allow_infinity=False,
    ))
    @settings(max_examples=200, deadline=None)
    def test_bitwise_equal_on_random_supports(self, parts, x):
        lb, ml, ub = parts
        scalar = triangular_cdf(x, lb, ml, ub)
        vector = triangular_cdf_array(
            x, np.array([lb]), np.array([ml]), np.array([ub])
        )
        assert bits(scalar) == bits(float(vector[0]))

    def test_degenerate_support_is_a_step(self):
        out = triangular_cdf_array(
            np.array([0.9, 1.0, 1.1]),
            np.array([1.0, 1.0, 1.0]),
            np.array([1.0, 1.0, 1.0]),
            np.array([1.0, 1.0, 1.0]),
        )
        assert out.tolist() == [0.0, 1.0, 1.0]


# ----------------------------------------------------------------------
# mixed-radix place values
# ----------------------------------------------------------------------
class TestDigitWeights:
    @pytest.mark.parametrize(
        "radices", [(1,), (2, 3, 4), (5, 1, 2), (7,), (2, 2, 2, 2)]
    )
    def test_closed_form_matches_decode(self, radices):
        weights = digit_weights(radices)
        total = int(np.prod(radices))
        flats = np.arange(total, dtype=np.int64)
        for position, weight in enumerate(weights):
            digits = (flats // weight) % radices[position]
            expected = [
                decode_combination(flat, radices)[position]
                for flat in range(total)
            ]
            assert digits.tolist() == expected

    def test_rejects_zero_radix(self):
        with pytest.raises(ValueError):
            digit_weights((2, 0, 3))


# ----------------------------------------------------------------------
# packing
# ----------------------------------------------------------------------
class TestPacking:
    def test_columns_mirror_the_prediction_lists(self):
        problem = problem_for(session_for())
        packed = pack_problem(problem)
        assert packed.names == problem.names
        assert packed.radices == problem.radices
        assert packed.weights == digit_weights(problem.radices)
        for position, options in enumerate(problem.lists):
            assert packed.ii[position].tolist() == [
                p.ii_main for p in options
            ]
            assert packed.latency[position].tolist() == [
                p.latency_main for p in options
            ]
            assert packed.pipelined[position].tolist() == [
                p.pipelined for p in options
            ]
            for i, p in enumerate(options):
                assert bits(packed.area_lb[position][i]) == bits(
                    p.area_total.lb
                )
                assert bits(packed.area_ml[position][i]) == bits(
                    p.area_total.ml
                )
                assert bits(packed.area_ub[position][i]) == bits(
                    p.area_total.ub
                )
                assert bits(packed.power_lb[position][i]) == bits(
                    p.power_mw.lb
                )
                label = packed.module_set_labels[
                    packed.module_set_ids[position][i]
                ]
                assert label == p.module_set.label

    def test_chip_layout_follows_scalar_iteration_order(self):
        problem = problem_for(session_for())
        packed = pack_problem(problem)
        partitioning = problem.partitioning
        assert packed.chip_names == tuple(partitioning.chips)
        for chip_index, chip_name in enumerate(packed.chip_names):
            expected = tuple(
                problem.names.index(name)
                for name in partitioning.partitions_on_chip(chip_name)
            )
            assert packed.chip_positions[chip_index] == expected
            assert packed.usable_opt[chip_index] == (
                problem.usable_area[chip_name]
            )
        assert packed.nbytes() > 0

    def test_packed_is_cached_on_the_problem(self):
        problem = problem_for(session_for())
        first = problem.packed()
        assert problem.packed() is first
        other = pack_problem(problem)
        problem.attach_packed(other)
        assert problem.packed() is other

    def test_packed_cache_survives_pickling(self):
        import pickle

        problem = problem_for(session_for())
        pack = problem.packed()
        clone = pickle.loads(pickle.dumps(problem))
        cached = clone.__dict__.get("_packed")
        assert cached is not None
        assert cached.names == pack.names


# ----------------------------------------------------------------------
# level-1 mask
# ----------------------------------------------------------------------
class TestLevel1KeepMask:
    def test_mask_equals_scalar_filter(self):
        session = session_for()
        usable = session.max_usable_area_mil2()
        for predictions in session.predict_all().values():
            mask = level1_keep_mask(
                predictions, session.criteria, session.clocks, usable
            )
            expected = [
                prediction_possibly_feasible(
                    p, session.criteria, session.clocks, usable
                )
                for p in predictions
            ]
            assert mask.tolist() == expected

    def test_level1_prune_is_kernel_invariant(self):
        """Long lists take the vectorized path; results are identical."""
        import repro.search.pruning as pruning

        session = session_for()
        usable = session.max_usable_area_mil2()
        raw = session.predict_all()
        # Repeat the list across the threshold so the vectorized path
        # actually engages (and once below it, the scalar path).
        predictions = next(iter(raw.values()))
        long_list = (
            predictions * (pruning.LEVEL1_VECTOR_THRESHOLD // max(
                1, len(predictions)
            ) + 1)
        )
        assert len(long_list) >= pruning.LEVEL1_VECTOR_THRESHOLD
        vectorized = pruning.level1_prune(
            long_list, session.criteria, session.clocks, usable
        )
        scalar = [
            p
            for p in long_list
            if prediction_possibly_feasible(
                p, session.criteria, session.clocks, usable
            )
        ]
        scalar = pruning.dominance_filter(scalar)
        scalar = sorted(scalar, key=DesignPrediction.sort_key)
        assert vectorized == scalar


# ----------------------------------------------------------------------
# argmin
# ----------------------------------------------------------------------
class TestLexicographicArgmin:
    def test_matches_python_min_with_tuple_key(self):
        ii = np.array([3, 1, 2, 1, 1], dtype=np.int64)
        lat = np.array([9, 5, 1, 4, 5], dtype=np.int64)
        expected = min(
            range(5), key=lambda i: (int(ii[i]), int(lat[i]))
        )
        assert lexicographic_argmin(ii, lat) == expected == 3

    def test_ties_resolve_to_the_lowest_index(self):
        ii = np.array([2, 2, 2], dtype=np.int64)
        lat = np.array([7, 7, 7], dtype=np.int64)
        assert lexicographic_argmin(ii, lat) == 0

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            lexicographic_argmin(np.array([], dtype=np.int64))


# ----------------------------------------------------------------------
# screens: soundness and exactness
# ----------------------------------------------------------------------
class TestScreens:
    def test_prune_mask_is_bitwise_exact(self):
        problem = problem_for(session_for(), raw=True)
        packed = problem.packed()
        total = problem.combination_count()
        flats = np.arange(total, dtype=np.int64)
        prune_kill, _, _, ii_main, latency_max = screen_block(
            problem, packed, flats
        )
        for flat in range(total):
            selection = problem.selection(flat)
            assert bool(prune_kill[flat]) == chip_area_hopeless(
                problem.partitioning, selection, problem.usable_area
            )
            assert int(ii_main[flat]) == max(
                p.ii_main for p in selection.values()
            )
            assert int(latency_max[flat]) == max(
                p.latency_main for p in selection.values()
            )

    def test_killed_combinations_are_never_feasible(self):
        """Soundness: anything any screen kills, the scalar path rejects."""
        # Tight criteria so the verdict screens actually fire.
        session = session_for(performance_ns=9_000.0, delay_ns=9_000.0)
        problem = problem_for(session, raw=True)
        packed = problem.packed()
        total = problem.combination_count()
        flats = np.arange(total, dtype=np.int64)
        prune_kill, unintegrable, verdict, _, _ = screen_block(
            problem, packed, flats
        )
        killed = flats[prune_kill | unintegrable | verdict]
        assert killed.shape[0] > 0  # the tight criteria must bite
        for flat in killed.tolist():
            scalar_feasible, _ = evaluate_range(
                problem, flat, flat + 1
            )
            assert scalar_feasible == []

    def test_counter_contract_against_scalar(self):
        problem = problem_for(session_for(), raw=True)
        total = problem.combination_count()
        scalar: dict = {}
        vector: dict = {}
        evaluate_range(problem, 0, total, counters=scalar)
        evaluate_range_batch(problem, 0, total, counters=vector)
        assert vector["combinations"] == scalar["combinations"]
        assert vector["pruned_level2"] == scalar["pruned_level2"]
        assert vector["feasible"] == scalar["feasible"]
        # A verdict-screened combination may be one the scalar path
        # classified as integration-infeasible; the split is bounded.
        assert (
            vector["integration_infeasible"]
            <= scalar["integration_infeasible"]
        )
        assert (
            vector["integration_infeasible"] + vector["screened_verdict"]
            >= scalar["integration_infeasible"]
        )

    def test_block_boundaries_do_not_matter(self):
        problem = problem_for(session_for(), raw=True)
        total = problem.combination_count()
        whole, trials = evaluate_range_batch(problem, 0, total)
        tiny, tiny_trials = evaluate_range_batch(
            problem, 0, total, block_size=7
        )
        assert trials == tiny_trials == total
        assert len(whole) == len(tiny)
        for a, b in zip(whole, tiny):
            assert a.selection == b.selection

    def test_cancellation_raises(self):
        problem = problem_for(session_for(), raw=True)
        total = problem.combination_count()
        with pytest.raises(SearchCancelled):
            evaluate_range_batch(
                problem, 0, total, cancel=lambda: True
            )


# ----------------------------------------------------------------------
# dispatch and validation
# ----------------------------------------------------------------------
class TestKernelSelection:
    def test_dispatcher_rejects_unknown_kernel(self):
        problem = problem_for(session_for())
        with pytest.raises(ValueError):
            evaluate_range_kernel(problem, 0, 1, kernel="simd")

    def test_engine_rejects_unknown_kernel(self):
        from repro.engine import EvaluationEngine

        with pytest.raises(ValueError):
            EvaluationEngine(workers=1, kernel="simd")
        engine = EvaluationEngine(workers=1)
        with pytest.raises(ValueError):
            engine.run(problem_for(session_for()), kernel="simd")

    def test_session_check_rejects_unknown_kernel(self):
        with pytest.raises(PredictionError):
            session_for().check(
                heuristic="enumeration", kernel="simd"
            )

    def test_engine_stats_report_the_kernel(self):
        from repro.engine import EvaluationEngine

        engine = EvaluationEngine(workers=1, kernel="vectorized")
        assert engine.stats()["kernel"] == "vectorized"
