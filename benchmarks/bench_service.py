"""Serving-layer throughput: cold/warm cache checks/sec + an RPS soak.

Not a paper table — this measures the subsystem the paper's
interactivity claim (sections 1 and 6) grows into: a designer session
re-checks near-identical partitionings, so the server memoizes verdicts
on the project fingerprint.  Three benches:

* cold vs warm check throughput (in-process dispatch, artifact
  ``service_throughput.txt``);
* a sustained-RPS soak over a real socket: concurrent clients hammer
  ``/healthz`` and warm ``/check`` for a fixed request budget, then the
  bench asserts the Prometheus exposition carries sane p95-latency and
  error-rate gauges and writes ``BENCH_service.json`` — the baseline
  ``benchmarks/check_bench_trajectory.py`` compares against in CI;
* the **distributed soak** (standalone ``main``, not pytest): a real
  single-node ``serve`` subprocess and a real ``--procs N`` fleet run
  the same project stream against one shared prediction-cache
  directory.  It asserts fleet verdicts byte-identical to single-node,
  warm cross-worker cache hits (the fleet loads entries another process
  wrote), a clean fleet SIGTERM drain, and — full mode, on a host with
  at least as many cores as fleet workers — a >= 2x RPS speedup at 4
  workers.  Writes ``BENCH_distributed.json``.

Run the distributed soak directly (no pytest needed)::

    python benchmarks/bench_service.py            # full, gated
    python benchmarks/bench_service.py --smoke    # CI mode
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.request
from typing import Dict, List, Optional, Tuple

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))), "src"),
)

from repro.experiments import experiment1_session, experiment2_session
from repro.io.project import session_to_dict
from repro.obs.metrics import MetricsRegistry
from repro.service import ChopService, make_server

WARM_REQUESTS = 200

SOAK_CLIENTS = 4
SOAK_REQUESTS_PER_CLIENT = 75


def _cold_check_seconds(doc) -> float:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    started = time.perf_counter()
    service._check(entry, {"heuristic": "iterative"})
    elapsed = time.perf_counter() - started
    service.close()
    return elapsed


def _warm_checks_per_second(doc) -> tuple:
    service = ChopService(workers=1)
    entry, _ = service.sessions.put(doc)
    first = service._check(entry, {"heuristic": "iterative"})
    assert first["cache_hit"] is False
    started = time.perf_counter()
    for _ in range(WARM_REQUESTS):
        response = service._check(entry, {"heuristic": "iterative"})
        assert response["cache_hit"] is True
    elapsed = time.perf_counter() - started
    stats = service.cache.stats()
    service.close()
    return WARM_REQUESTS / elapsed, stats


def test_service_cold_vs_warm_throughput(benchmark, save_artifact):
    doc = session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )
    measurements = {}

    def run():
        cold_s = _cold_check_seconds(doc)
        warm_rate, stats = _warm_checks_per_second(doc)
        measurements.update(
            cold_s=cold_s, warm_rate=warm_rate, stats=stats
        )
        return measurements

    benchmark.pedantic(run, rounds=1, iterations=1)

    cold_rate = 1.0 / measurements["cold_s"]
    warm_rate = measurements["warm_rate"]
    stats = measurements["stats"]
    lines = [
        "Serving-layer check throughput (experiment 1, 2 partitions,",
        "iterative heuristic, one process, in-process dispatch):",
        "",
        f"  cold cache : {cold_rate:10.1f} checks/sec "
        f"({measurements['cold_s'] * 1000:.1f} ms/check)",
        f"  warm cache : {warm_rate:10.1f} checks/sec "
        f"(over {WARM_REQUESTS} requests)",
        f"  speedup    : {warm_rate / cold_rate:10.1f}x",
        "",
        f"  cache hits {stats['hits']}, misses {stats['misses']}, "
        f"hit rate {stats['hit_rate']:.3f}",
    ]
    save_artifact("service_throughput.txt", "\n".join(lines))

    # The whole point of the cache: warm must beat cold clearly.
    assert warm_rate > cold_rate * 2
    assert stats["misses"] == 1
    assert stats["hits"] == WARM_REQUESTS


def _get(port: int, path: str) -> tuple:
    with urllib.request.urlopen(
        f"http://127.0.0.1:{port}{path}", timeout=30
    ) as resp:
        return resp.status, resp.read().decode()


def test_service_soak_rps_and_slo_gauges(benchmark, save_artifact):
    """Sustained-RPS soak smoke over a real socket.

    Asserts the scrape-side contract the dashboards depend on: after
    load, the Prometheus exposition carries the request-latency
    histogram with a finite bucket-derived p95 and the SLO burn gauges,
    and the error-rate objective reads zero for an all-2xx soak.
    """
    doc = session_to_dict(
        experiment1_session(package_number=2, partition_count=2)
    )
    registry = MetricsRegistry()  # isolated from other benches
    service = ChopService(workers=1, registry=registry)
    httpd = make_server(service, "127.0.0.1", 0)
    port = httpd.server_address[1]
    serving = threading.Thread(target=httpd.serve_forever, daemon=True)
    serving.start()
    measurements = {}
    try:
        body = json.dumps(doc).encode()
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects",
            data=body,
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(req, timeout=60) as resp:
            pid = json.loads(resp.read())["project_id"]
        # Warm the check cache so the soak measures serving overhead,
        # not BAD prediction.
        check = urllib.request.Request(
            f"http://127.0.0.1:{port}/projects/{pid}/check",
            data=b"{}",
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        with urllib.request.urlopen(check, timeout=120) as resp:
            resp.read()

        errors = []

        def client(index: int) -> None:
            try:
                for i in range(SOAK_REQUESTS_PER_CLIENT):
                    if i % 3 == 0:
                        with urllib.request.urlopen(
                            urllib.request.Request(
                                f"http://127.0.0.1:{port}/projects/"
                                f"{pid}/check",
                                data=b"{}",
                                method="POST",
                            ),
                            timeout=60,
                        ) as resp:
                            resp.read()
                    else:
                        _get(port, "/healthz")
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def soak():
            started = time.perf_counter()
            threads = [
                threading.Thread(target=client, args=(i,))
                for i in range(SOAK_CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(120)
            measurements["wall_s"] = time.perf_counter() - started
            return measurements

        benchmark.pedantic(soak, rounds=1, iterations=1)
        assert not errors

        total = SOAK_CLIENTS * SOAK_REQUESTS_PER_CLIENT
        rps = total / measurements["wall_s"]
        histogram = service.metrics.latency_histogram
        p50 = histogram.quantile(0.5)
        p95 = histogram.quantile(0.95)
        slo = service.slo.evaluate()
        error_doc = next(
            o
            for o in slo["objectives"]
            if o["kind"] == "error_rate"
        )

        status, text = _get(port, "/metrics?format=prometheus")
        assert status == 200
        # The gauges dashboards alert on must be present and sane.
        assert "# TYPE chop_request_latency_seconds histogram" in text
        assert 'chop_slo_burn_ratio{slo="latency_p95"}' in text
        assert 'chop_slo_ok{slo="error_rate"} 1' in text
        assert p95 is not None and 0 < p95 < 60
        assert p50 is not None and p50 <= p95
        assert error_doc["measured_ratio"] in (None, 0.0)

        payload = {
            "bench": "service_soak",
            "clients": SOAK_CLIENTS,
            "requests": total,
            "rps": round(rps, 1),
            "p50_ms": round(p50 * 1000, 3),
            "p95_ms": round(p95 * 1000, 3),
            "error_rate": error_doc["measured_ratio"] or 0.0,
            "slo_ok": bool(slo["ok"]),
            "gates_ok": True,
        }
        save_artifact(
            "BENCH_service.json", json.dumps(payload, indent=2)
        )
    finally:
        httpd.shutdown()
        httpd.server_close()
        service.close()
        serving.join(5)


# ----------------------------------------------------------------------
# distributed soak: single node vs a --procs N fleet, one shared cache
# ----------------------------------------------------------------------
RESULTS_DIR = os.path.join(
    os.path.dirname(os.path.abspath(__file__)), "results"
)
REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

FLEET_PROCS = 4
RPS_SPEEDUP_GATE = 2.0


def _distributed_documents() -> List[dict]:
    """Four distinct projects whose fingerprints spread across workers."""
    return [
        session_to_dict(
            experiment1_session(package_number=2, partition_count=3)
        ),
        session_to_dict(experiment2_session(partition_count=4)),
        session_to_dict(
            experiment1_session(package_number=2, partition_count=2)
        ),
        session_to_dict(experiment2_session(partition_count=3)),
    ]


def _spawn_server(
    procs: int, cache_dir: str, drain_timeout: int = 10
) -> Tuple[subprocess.Popen, int]:
    """Boot ``repro.cli serve`` on an ephemeral port; returns the port.

    The banner doubles as the readiness signal: in fleet mode it is
    printed only after every worker's listeners are live.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "serve",
            "--port", "0", "--procs", str(procs), "--workers", "2",
            "--drain-timeout", str(drain_timeout),
            "--disk-cache", cache_dir,
            "--cache-backend", "shared",
        ],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        env=env,
        cwd=REPO_ROOT,
    )
    banner = proc.stdout.readline()
    if "serving on http://" not in banner:
        proc.kill()
        raise RuntimeError(f"server never announced: {banner!r}")
    port = int(banner.split("http://127.0.0.1:")[1].split(" ")[0])
    return proc, port


def _shutdown(proc: subprocess.Popen, timeout: float = 60.0) -> int:
    proc.send_signal(signal.SIGTERM)
    proc.communicate(timeout=timeout)
    return proc.returncode


def _request(
    port: int, path: str, document: Optional[dict] = None, timeout=600
):
    data = (
        None if document is None
        else json.dumps(document).encode("utf-8")
    )
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        return json.loads(response.read().decode("utf-8"))


def _strip_timings(verdict: dict) -> dict:
    verdict.pop("cpu_seconds", None)
    if isinstance(verdict.get("result"), dict):
        verdict["result"].pop("cpu_seconds", None)
    return verdict


def _check_all(port: int, documents: List[dict]) -> Tuple[List, List]:
    """Upload every project and check it; returns (ids, verdicts)."""
    project_ids, verdicts = [], []
    for document in documents:
        created = _request(port, "/projects", document)
        project_ids.append(created["project_id"])
        verdict = _request(
            port, f"/projects/{created['project_id']}/check", {}
        )
        verdicts.append(_strip_timings(verdict))
    return project_ids, verdicts


_SOAK_CLIENT_SCRIPT = """
import json, sys, time, urllib.request

port = int(sys.argv[1])
requests_per_client = int(sys.argv[2])
index = int(sys.argv[3])
project_ids = sys.argv[4].split(",")

def hit(path, data=None, timeout=60):
    request = urllib.request.Request(
        f"http://127.0.0.1:{port}{path}",
        data=data,
        method="GET" if data is None else "POST",
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(request, timeout=timeout) as response:
        response.read()

started = time.perf_counter()
for i in range(requests_per_client):
    if i % 3 == 0:
        pid = project_ids[(index + i) % len(project_ids)]
        hit(f"/projects/{pid}/check", data=b"{}")
    else:
        hit("/healthz")
print(time.perf_counter() - started)
"""


def _soak_rps(
    port: int,
    project_ids: List[str],
    clients: int,
    requests_per_client: int,
) -> float:
    """Mixed warm traffic: 1/3 sticky checks, 2/3 local health reads.

    Each client is its own OS process: a threaded in-process load
    generator is itself GIL-bound around the single node's throughput
    ceiling, so it cannot tell a scaled fleet from a saturated single
    process.  Throughput is total requests over the slowest client's
    request-loop wall clock (interpreter startup excluded).
    """
    procs = [
        subprocess.Popen(
            [
                sys.executable, "-c", _SOAK_CLIENT_SCRIPT,
                str(port), str(requests_per_client), str(index),
                ",".join(project_ids),
            ],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        for index in range(clients)
    ]
    walls = []
    for proc in procs:
        out, err = proc.communicate(timeout=600)
        if proc.returncode != 0:
            raise RuntimeError(f"soak client failed: {err.strip()}")
        walls.append(float(out.strip()))
    return clients * requests_per_client / max(walls)


def _cross_worker_hits(snapshot: dict) -> int:
    """Sum of remote shared-cache hits across the fleet's workers."""
    total = 0
    for worker_doc in snapshot.get("workers", {}).values():
        disk = worker_doc.get("disk_cache") or {}
        total += int(disk.get("hits_remote", 0) or 0)
    return total


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="single-node vs fleet distributed soak"
    )
    parser.add_argument(
        "--smoke", action="store_true",
        help="identity/drain/cross-hit gates only, no RPS gate",
    )
    parser.add_argument(
        "--procs", type=int, default=FLEET_PROCS,
        help=f"fleet worker processes (default {FLEET_PROCS})",
    )
    parser.add_argument(
        "--clients", type=int, default=None,
        help="concurrent soak clients (default 8, or 4 with --smoke)",
    )
    parser.add_argument(
        "--requests", type=int, default=None,
        help="requests per client (default 100, or 30 with --smoke)",
    )
    args = parser.parse_args(argv)
    clients = args.clients or (4 if args.smoke else 8)
    requests_per_client = args.requests or (30 if args.smoke else 100)

    # The RPS gate measures parallel scaling, so it only binds when the
    # host can physically scale: procs workers need procs cores before
    # a 2x claim is meaningful.  Identity, cross-worker-hit and drain
    # gates are correctness and always bind.
    cores = os.cpu_count() or 1
    rps_gate_active = not args.smoke and cores >= args.procs

    import tempfile

    documents = _distributed_documents()
    failures: List[str] = []
    with tempfile.TemporaryDirectory(prefix="chop-dist-") as cache_dir:
        # Phase 1 — single node.  Seeds the shared cache directory:
        # every prediction entry it stores carries *its* writer id, so
        # phase-2 loads count as remote (cross-worker) hits.
        proc, port = _spawn_server(procs=1, cache_dir=cache_dir)
        try:
            single_ids, single_verdicts = _check_all(port, documents)
            rps_single = _soak_rps(
                port, single_ids, clients, requests_per_client
            )
        finally:
            rc_single = _shutdown(proc)
        if rc_single != 0:
            failures.append(f"single-node drain exited {rc_single}")

        # Phase 2 — the fleet, same cache directory, same stream.
        proc, port = _spawn_server(procs=args.procs, cache_dir=cache_dir)
        try:
            fleet_ids, fleet_verdicts = _check_all(port, documents)
            rps_fleet = _soak_rps(
                port, fleet_ids, clients, requests_per_client
            )
            snapshot = _request(port, "/metrics")
            cross_hits = _cross_worker_hits(snapshot)
            fleet_block = snapshot.get("fleet", {})
        finally:
            rc_fleet = _shutdown(proc)
        if rc_fleet != 0:
            failures.append(f"fleet drain exited {rc_fleet}")

    if fleet_ids != single_ids:
        failures.append(
            f"project ids diverged: {single_ids} vs {fleet_ids}"
        )
    identity_ok = fleet_verdicts == single_verdicts
    if not identity_ok:
        failures.append("fleet verdicts differ from single node")
    cross_ok = cross_hits > 0
    if not cross_ok:
        failures.append("no cross-worker shared-cache hits observed")
    drain_ok = rc_single == 0 and rc_fleet == 0
    speedup = rps_fleet / rps_single if rps_single > 0 else 0.0
    if rps_gate_active and speedup < RPS_SPEEDUP_GATE:
        failures.append(
            f"expected >= {RPS_SPEEDUP_GATE}x fleet RPS on "
            f"{cores} cores, measured {speedup:.2f}x"
        )
    gates_ok = not failures

    lines = [
        f"Distributed soak — {len(documents)} projects, "
        f"{clients} clients x {requests_per_client} requests, "
        f"{args.procs}-worker fleet vs single node, one shared "
        f"prediction cache:",
        "",
        f"  single node : {rps_single:10.1f} req/s (drain rc "
        f"{rc_single})",
        f"  fleet       : {rps_fleet:10.1f} req/s (drain rc "
        f"{rc_fleet}, {fleet_block.get('workers')} workers, "
        f"{fleet_block.get('forwarded')} forwarded)",
        f"  speedup     : {speedup:10.2f} x  (RPS gate "
        + (
            "enforced"
            if rps_gate_active
            else f"skipped: {cores} core(s) for {args.procs} workers"
            if not args.smoke
            else "skipped: smoke mode"
        )
        + ")",
        "",
        f"  verdict identity  : "
        f"{'byte-identical' if identity_ok else 'DIVERGED'}",
        f"  cross-worker hits : {cross_hits}",
        "  gates             : "
        + ("ok" if gates_ok else "FAILED: " + "; ".join(failures)),
    ]
    table = "\n".join(lines)
    print(table)

    os.makedirs(RESULTS_DIR, exist_ok=True)
    text_path = os.path.join(RESULTS_DIR, "distributed_soak.txt")
    with open(text_path, "w") as handle:
        handle.write(table + "\n")
    print(f"\nwrote {text_path}")

    json_doc = {
        "bench": "distributed_soak",
        "smoke": bool(args.smoke),
        "procs": args.procs,
        "projects": len(documents),
        "clients": clients,
        "requests_per_client": requests_per_client,
        "cores": cores,
        "rps_single": round(rps_single, 1),
        "rps_fleet": round(rps_fleet, 1),
        "speedup": round(speedup, 3),
        "rps_gate_enforced": rps_gate_active,
        "identity_ok": identity_ok,
        "cross_worker_hits": cross_hits,
        "cross_worker_hits_ok": cross_ok,
        "drain_ok": drain_ok,
        "forwarded": fleet_block.get("forwarded"),
        "gates_ok": gates_ok,
    }
    json_path = os.path.join(RESULTS_DIR, "BENCH_distributed.json")
    with open(json_path, "w") as handle:
        json.dump(json_doc, handle, indent=2)
        handle.write("\n")
    print(f"wrote {json_path}")

    return 0 if gates_ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
