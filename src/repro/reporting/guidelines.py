"""Synthesis guidelines for a feasible design (paper section 3.1).

"When CHOP determines the feasibility of an implementation, it outputs
the design decisions and prediction results.  This provides a guideline
for the designer to synthesize the predicted implementation."
"""

from __future__ import annotations

from typing import List

from repro.search.results import FeasibleDesign


def design_guidelines(design: FeasibleDesign) -> str:
    """The section-3.1-style report for one feasible design."""
    system = design.system
    lines: List[str] = [
        (
            f"Predicted initiation interval {system.ii_main}, system delay "
            f"{system.delay_main} (main clock cycles), clock cycle "
            f"{system.clock_cycle_ns.ml:.0f} ns."
        ),
        "",
        "CHOP has reached this prediction by selecting:",
    ]
    for name in sorted(design.selection):
        prediction = design.selection[name]
        lines.append("")
        lines.append(f"Partition {name}:")
        for item in prediction.guideline_lines():
            lines.append(f"  - {item}")
    if system.transfer_modules:
        lines.append("")
        lines.append("Data transfer modules:")
        for module in system.transfer_modules:
            lines.append(
                f"  - {module.task_name} on {module.chip} "
                f"({module.mode} mode): {module.buffer_bits}-bit buffer, "
                f"PLA {module.controller.inputs}x"
                f"{module.controller.product_terms}x"
                f"{module.controller.outputs}, area "
                f"{module.area_mil2.ml:.0f} mil^2"
                + (", always active" if module.always_active else "")
            )
    lines.append("")
    lines.append("Chip occupancy:")
    for chip_name in sorted(system.chip_usage):
        usage = system.chip_usage[chip_name]
        lines.append(
            f"  - {chip_name}: partitions {', '.join(usage.partitions) or '-'}"
            f", area {usage.total_area.ml:.0f} of "
            f"{usage.usable_area_mil2:.0f} mil^2"
        )
    return "\n".join(lines)
