"""Figure 7/8-style design-space scatter output.

The paper's figures plot every design considered during an unpruned
search in area-delay space.  :func:`ascii_scatter` renders the cloud in a
terminal; :func:`scatter_csv` emits the series for external plotting.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def scatter_csv(points: Sequence[Tuple[float, int]]) -> str:
    """CSV (area_mil2, delay_cycles) series of a design space."""
    lines = ["area_mil2,delay_cycles"]
    for area, delay in points:
        lines.append(f"{area:.1f},{delay}")
    return "\n".join(lines)


def ascii_scatter(
    points: Sequence[Tuple[float, int]],
    width: int = 72,
    height: int = 20,
) -> str:
    """A terminal scatter plot of (area, delay) design points.

    The x axis is area, the y axis delay (origin bottom-left, as the
    paper draws them).  Overlapping designs deepen the glyph:
    ``. : * #`` for 1 / 2-3 / 4-7 / 8+ designs per cell.
    """
    if width < 8 or height < 4:
        raise ValueError("scatter needs width >= 8 and height >= 4")
    if not points:
        return "(empty design space)"
    areas = [p[0] for p in points]
    delays = [p[1] for p in points]
    a_lo, a_hi = min(areas), max(areas)
    d_lo, d_hi = min(delays), max(delays)
    a_span = (a_hi - a_lo) or 1.0
    d_span = (d_hi - d_lo) or 1

    grid = [[0] * width for _ in range(height)]
    for area, delay in points:
        x = min(width - 1, int((area - a_lo) / a_span * (width - 1)))
        y = min(height - 1, int((delay - d_lo) / d_span * (height - 1)))
        grid[height - 1 - y][x] += 1

    def glyph(count: int) -> str:
        if count == 0:
            return " "
        if count == 1:
            return "."
        if count <= 3:
            return ":"
        if count <= 7:
            return "*"
        return "#"

    lines: List[str] = [
        f"delay {d_hi:>6} +" + "".join(glyph(c) for c in grid[0])
    ]
    for row in grid[1:-1]:
        lines.append("             |" + "".join(glyph(c) for c in row))
    lines.append(
        f"delay {d_lo:>6} +" + "".join(glyph(c) for c in grid[-1])
    )
    lines.append(
        "              " + f"area {a_lo:.0f}".ljust(width // 2)
        + f"area {a_hi:.0f}".rjust(width - width // 2)
    )
    lines.append(f"{len(points)} designs plotted")
    return "\n".join(lines)
