"""Regression tests for the Figure 5 serialization loop.

These force the iterative heuristic into its inner loop — the fastest
compatible selection violates a chip-area bound and the heuristic must
serialize its way to feasibility — and check the recorded trail.
"""

from __future__ import annotations

import pytest

from repro.bad.styles import ArchitectureStyle, ClockScheme, OperationTiming
from repro.chips.package import ChipPackage
from repro.core.chop import ChopSession
from repro.core.feasibility import FeasibilityCriteria
from repro.core.schemes import horizontal_cut
from repro.dfg.benchmarks import ar_lattice_filter
from repro.library.presets import table1_library


def _small_package(name: str, scale: float) -> ChipPackage:
    """A MOSIS-like package with a scaled-down die."""
    return ChipPackage(
        name=name,
        width_mil=311.02 * scale,
        height_mil=362.20 * scale,
        pin_count=84,
        pad_delay_ns=25.0,
        pad_area_mil2=100.0,
    )


@pytest.fixture
def tight_session():
    """Two partitions on dies just big enough for serial designs."""
    graph = ar_lattice_filter()
    session = ChopSession(
        graph=graph,
        library=table1_library(),
        clocks=ClockScheme(300.0, dp_multiplier=10),
        style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
        criteria=FeasibilityCriteria(
            performance_ns=90_000.0, delay_ns=120_000.0
        ),
    )
    session.add_chip("chip1", _small_package("small-1", 0.72))
    session.add_chip("chip2", _small_package("small-2", 0.72))
    parts = horizontal_cut(graph, 2)
    session.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
    return session


class TestSerializationLoop:
    def test_serializes_to_feasibility(self, tight_session):
        result = tight_session.check("iterative")
        assert result.feasible, "serialization should reach feasibility"
        best = result.best()
        # The fastest pruned selections must have been infeasible on the
        # shrunken dies: the chosen design is not the fastest available.
        pruned = tight_session.pruned_predictions()
        fastest_combo_ii = max(
            pruned["P1"][0].ii_main, pruned["P2"][0].ii_main
        )
        usable = tight_session.chips["chip1"].package.usable_area_mil2(84)
        fastest_fits = (
            pruned["P1"][0].area_total.ub <= usable
            and pruned["P2"][0].area_total.ub <= usable
        )
        if not fastest_fits:
            assert result.trials > len(
                set(
                    d.ii_main for d in result.feasible
                )
            ), "reaching feasibility required tentative serializations"

    def test_matches_enumeration_outcome(self, tight_session):
        iter_best = tight_session.check("iterative").best()
        enum_best = tight_session.check("enumeration").best()
        assert iter_best is not None and enum_best is not None
        assert iter_best.ii_main == enum_best.ii_main

    def test_selected_designs_fit_the_small_dies(self, tight_session):
        result = tight_session.check("iterative")
        for design in result.feasible:
            for usage in design.system.chip_usage.values():
                assert usage.total_area.ub <= usage.usable_area_mil2

    def test_infeasible_when_dies_too_small(self):
        graph = ar_lattice_filter()
        session = ChopSession(
            graph=graph,
            library=table1_library(),
            clocks=ClockScheme(300.0, dp_multiplier=10),
            style=ArchitectureStyle(OperationTiming.SINGLE_CYCLE),
            criteria=FeasibilityCriteria(
                performance_ns=90_000.0, delay_ns=120_000.0
            ),
        )
        session.add_chip("chip1", _small_package("tiny-1", 0.45))
        session.add_chip("chip2", _small_package("tiny-2", 0.45))
        parts = horizontal_cut(graph, 2)
        session.set_partitions(parts, {"P1": "chip1", "P2": "chip2"})
        from repro.errors import PredictionError

        try:
            result = session.check("iterative")
        except PredictionError:
            return  # everything pruned: acceptably infeasible
        assert not result.feasible
