"""The exception hierarchy contract."""

from __future__ import annotations

import pytest

from repro.errors import (
    ChipError,
    ChopError,
    InfeasibleError,
    LibraryError,
    PartitioningError,
    PredictionError,
    SpecificationError,
)


@pytest.mark.parametrize(
    "exc_type",
    [
        SpecificationError,
        LibraryError,
        ChipError,
        PartitioningError,
        PredictionError,
        InfeasibleError,
    ],
)
def test_all_derive_from_chop_error(exc_type):
    assert issubclass(exc_type, ChopError)


def test_infeasible_error_carries_reason():
    error = InfeasibleError("pins oversubscribed")
    assert error.reason == "pins oversubscribed"
    assert "pins oversubscribed" in str(error)


def test_catching_base_catches_all():
    with pytest.raises(ChopError):
        raise LibraryError("x")
