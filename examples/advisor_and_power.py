"""System-level advising with a power budget.

Combines two of the paper's section-5 extensions: the partition-count
advisor sweeps the design space the way the paper's conclusion suggests
("the designer can easily check the effects of system-level decisions in
real-time"), and a power constraint reshapes which option wins.

Run:  python examples/advisor_and_power.py
"""

from __future__ import annotations

from repro import FeasibilityCriteria
from repro.experiments import experiment1_session
from repro.search.advisor import advise_partition_count


def print_advice(title, advice) -> None:
    print(title)
    print("  rank  option         II    delay")
    for rank, entry in enumerate(advice, start=1):
        if entry.feasible:
            print(
                f"  {rank:>4}  {entry.label:<13} {entry.ii_main:>4}"
                f"  {entry.delay_main:>5}"
            )
        else:
            print(f"  {rank:>4}  {entry.label:<13}  infeasible")
    print()


def main() -> None:
    print("Advising on partition count (experiment-1 settings):")
    print()
    unconstrained = advise_partition_count(
        lambda count: experiment1_session(2, count), max_partitions=4
    )
    print_advice("Without a power budget:", unconstrained)

    # Find the unconstrained winner's power, then budget below it.
    winner_count = int(unconstrained[0].label.split()[0])
    winner_session = experiment1_session(2, winner_count)
    winner_power = (
        winner_session.check("iterative").best().system.power_mw.ml
    )
    budget = round(winner_power * 0.75)
    print(
        f"The winner draws ~{winner_power:.0f} mW; "
        f"imposing a {budget} mW system budget:"
    )
    print()

    def budgeted(count):
        session = experiment1_session(2, count)
        session.criteria = FeasibilityCriteria(
            performance_ns=30_000.0,
            delay_ns=30_000.0,
            system_power_mw=float(budget),
        )
        return session

    constrained = advise_partition_count(budgeted, max_partitions=4)
    print_advice(f"With the {budget} mW budget:", constrained)
    print(
        "High-performance multi-chip implementations buy their speed "
        "with parallel, highly-utilized datapaths; a power budget pushes "
        "the recommendation back toward fewer, more serial chips — the "
        "trade the paper's section 5 anticipated."
    )


if __name__ == "__main__":
    main()
