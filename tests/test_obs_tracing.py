"""Tests for repro.obs tracing: spans, sinks, engine re-parenting."""

from __future__ import annotations

import json
import threading

import pytest

from repro.engine import EvaluationEngine
from repro.errors import SearchCancelled
from repro.experiments import experiment2_session
from repro.obs import (
    JsonlSink,
    Tracer,
    activate,
    deterministic_span_id,
    load_trace_file,
    render_trace,
    span,
    validate_trace,
)
from repro.obs.tracing import NULL_SPAN


class TestSpanBasics:
    def test_span_without_tracer_is_free_null_context(self):
        with span("anything", attr=1) as sp:
            assert sp is NULL_SPAN
            assert not sp
            assert sp.counters is None
            sp.add("combinations", 10)  # absorbed silently
            sp.put("key", "value")

    def test_spans_nest_under_the_active_tracer(self):
        tracer = Tracer()
        with activate(tracer):
            with span("outer") as outer:
                assert outer
                with span("inner") as inner:
                    inner.add("combinations", 3)
        records = tracer.spans()
        assert [r["name"] for r in records] == ["outer", "inner"]
        outer_rec = next(r for r in records if r["name"] == "outer")
        inner_rec = next(r for r in records if r["name"] == "inner")
        assert outer_rec["parent_id"] is None
        assert inner_rec["parent_id"] == outer_rec["span_id"]
        assert inner_rec["counters"]["combinations"] == 3
        assert validate_trace(records) == []

    def test_sibling_spans_share_a_parent(self):
        tracer = Tracer()
        with activate(tracer):
            with span("parent") as parent:
                with span("a"):
                    pass
                with span("b"):
                    pass
        records = {r["name"]: r for r in tracer.spans()}
        assert records["a"]["parent_id"] == records["parent"]["span_id"]
        assert records["b"]["parent_id"] == records["parent"]["span_id"]

    def test_error_status_and_exception_passthrough(self):
        tracer = Tracer()
        with activate(tracer):
            with pytest.raises(ValueError):
                with span("boom"):
                    raise ValueError("broken")
        (record,) = tracer.spans()
        assert record["status"] == "error"
        assert "ValueError" in record["attrs"]["error"]

    def test_cancelled_status(self):
        tracer = Tracer()
        with activate(tracer):
            with pytest.raises(SearchCancelled):
                with span("stopped"):
                    raise SearchCancelled("test")
        (record,) = tracer.spans()
        assert record["status"] == "cancelled"

    def test_thread_isolation_of_active_span(self):
        """Concurrent threads sharing one tracer get separate stacks."""
        tracer = Tracer()
        barrier = threading.Barrier(2)

        def work(name):
            with activate(tracer):
                with span(name):
                    barrier.wait(5)

        threads = [
            threading.Thread(target=work, args=(f"t{i}",))
            for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(10)
        records = tracer.spans()
        assert len(records) == 2
        # Neither thread's span is parented under the other's.
        assert all(r["parent_id"] is None for r in records)


class TestJsonlSink:
    def test_sink_writes_one_valid_json_line_per_span(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(sink=JsonlSink(str(path)))
        with activate(tracer):
            with span("a"):
                with span("b"):
                    pass
        tracer.close()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            record = json.loads(line)
            assert record["schema"] == 1
        loaded = load_trace_file(str(path))
        assert validate_trace(loaded) == []

    def test_load_trace_file_rejects_garbage(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(ValueError, match="not valid JSON"):
            load_trace_file(str(path))


class TestEngineReparenting:
    @pytest.fixture(scope="class")
    def session(self):
        return experiment2_session(partition_count=3)

    def test_shard_spans_ship_back_and_reparent(self, session):
        tracer = Tracer()
        engine = EvaluationEngine(workers=2)
        with activate(tracer):
            result = session.check(
                heuristic="enumeration", engine=engine
            )
        records = tracer.spans()
        assert validate_trace(records) == []
        by_name = {}
        for record in records:
            by_name.setdefault(record["name"], []).append(record)
        run = by_name["engine.run"][0]
        shards = by_name["engine.shard"]
        assert len(shards) >= 2
        # Every worker-built shard span was re-parented under the run.
        assert all(s["parent_id"] == run["span_id"] for s in shards)
        # All spans belong to the one trace.
        assert {r["trace_id"] for r in records} == {tracer.trace_id}
        # Shard combination counters add up to the trial count.
        assert sum(
            s["counters"]["combinations"] for s in shards
        ) == result.trials
        # Shard ids are the deterministic function of (trace, index).
        for shard in shards:
            index = shard["attrs"]["shard"]
            assert shard["span_id"] == deterministic_span_id(
                tracer.trace_id, "shard", index
            )
        # The merge span records the replay.
        merge = by_name["engine.merge"][0]
        assert merge["counters"]["replayed_spans"] == len(shards)

    def test_parallel_result_identical_with_tracing_active(self, session):
        engine = EvaluationEngine(workers=2)
        plain = session.check(heuristic="enumeration", engine=engine)
        tracer = Tracer()
        with activate(tracer):
            traced = session.check(
                heuristic="enumeration", engine=engine
            )
        assert traced.trials == plain.trials
        assert len(traced.feasible) == len(plain.feasible)
        assert [d.selection for d in traced.feasible] == [
            d.selection for d in plain.feasible
        ]

    def test_untraced_engine_run_ships_no_spans(self, session):
        engine = EvaluationEngine(workers=2)
        result = session.check(heuristic="enumeration", engine=engine)
        assert result.trials > 0
        # No tracer active: nothing buffered anywhere to leak.
        tracer = Tracer()
        assert tracer.spans() == []


class TestDeterministicIds:
    def test_same_inputs_same_id(self):
        a = deterministic_span_id("trace", "shard", 3)
        b = deterministic_span_id("trace", "shard", 3)
        c = deterministic_span_id("trace", "shard", 4)
        assert a == b != c
        assert len(a) == 16
        int(a, 16)  # hex


class TestRenderTrace:
    def test_render_shows_tree_timings_and_counters(self):
        tracer = Tracer()
        with activate(tracer):
            with span("session.check"):
                with span("search.enumeration") as sp:
                    sp.add("combinations", 42)
        text = render_trace(tracer.spans())
        assert "session.check" in text
        assert "search.enumeration" in text
        assert "combinations=42" in text
        assert "ms" in text
        assert "└─" in text
