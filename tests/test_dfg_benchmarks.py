"""Tests for the benchmark graph generators."""

from __future__ import annotations

import pytest

from repro.dfg.benchmarks import (
    ar_lattice_filter,
    differential_equation,
    elliptic_wave_filter,
    fir_filter,
)
from repro.dfg.ops import OpType
from repro.dfg.transforms import validate_graph
from repro.errors import SpecificationError


class TestARLatticeFilter:
    def test_paper_operation_mix(self, ar_graph):
        counts = ar_graph.op_counts_by_type()
        assert counts[OpType.MUL] == 16
        assert counts[OpType.ADD] == 12
        assert ar_graph.op_count() == 28

    def test_two_outputs(self, ar_graph):
        assert len(ar_graph.primary_outputs()) == 2

    def test_eighteen_inputs(self, ar_graph):
        # Two samples plus sixteen lattice coefficients.
        assert len(ar_graph.primary_inputs()) == 18

    def test_sixteen_bit_default(self, ar_graph):
        assert all(v.width == 16 for v in ar_graph.values.values())

    def test_custom_width(self):
        g = ar_lattice_filter(width=8)
        assert all(v.width == 8 for v in g.values.values())

    def test_deterministic(self):
        a = ar_lattice_filter()
        b = ar_lattice_filter()
        assert sorted(a.operations) == sorted(b.operations)

    def test_alternating_mul_add_critical_path(self, ar_graph):
        # Four lattice sections (mul then add) plus the combining tree.
        assert ar_graph.depth() == 10


class TestEllipticWaveFilter:
    def test_classic_mix(self, ewf_graph):
        counts = ewf_graph.op_counts_by_type()
        assert counts[OpType.ADD] == 26
        assert counts[OpType.MUL] == 8
        assert ewf_graph.op_count() == 34

    def test_deep_critical_path(self, ewf_graph):
        assert ewf_graph.depth() >= 14

    def test_validates(self, ewf_graph):
        assert validate_graph(ewf_graph) == []


class TestFirFilter:
    @pytest.mark.parametrize("taps", [2, 3, 8, 16])
    def test_op_counts(self, taps):
        g = fir_filter(taps)
        counts = g.op_counts_by_type()
        assert counts[OpType.MUL] == taps
        assert counts[OpType.ADD] == taps - 1

    def test_balanced_tree_depth(self):
        g = fir_filter(8)
        assert g.depth() == 4  # mul + 3 adder levels

    def test_odd_tap_count(self):
        g = fir_filter(5)
        assert validate_graph(g) == []

    def test_rejects_single_tap(self):
        with pytest.raises(SpecificationError):
            fir_filter(1)


class TestDifferentialEquation:
    def test_hal_mix(self, diffeq_graph):
        counts = diffeq_graph.op_counts_by_type()
        assert counts[OpType.MUL] == 6
        assert counts[OpType.SUB] == 2
        assert counts[OpType.ADD] == 2
        assert counts[OpType.COMPARE] == 1

    def test_four_outputs(self, diffeq_graph):
        assert len(diffeq_graph.primary_outputs()) == 4
